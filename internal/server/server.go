// Package server exposes an online-fixed NGFix index over HTTP with a
// small JSON API — the deployment shape of the paper's production story:
// the index serves searches while continuously repairing itself with the
// query stream it observes.
//
//	POST /v1/search   {"vector": [...], "k": 10, "ef": 100}
//	POST /v1/insert   {"vector": [...]}
//	POST /v1/delete   {"id": 123}
//	POST /v1/fix      {}                      — drain & fix recorded queries
//	POST /v1/purge    {"k": 30, "ef": 200}    — unlink tombstones + repair
//	GET  /v1/stats
//	GET  /healthz
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ngfix/internal/core"
)

// Server wires an OnlineFixer to an http.Handler.
type Server struct {
	fixer *core.OnlineFixer
	mux   *http.ServeMux
	// DefaultK / DefaultEF apply when a search request omits them.
	DefaultK, DefaultEF int
}

// New builds a Server around an online fixer.
func New(fixer *core.OnlineFixer) *Server {
	s := &Server{fixer: fixer, mux: http.NewServeMux(), DefaultK: 10, DefaultEF: 100}
	s.mux.HandleFunc("/v1/search", s.handleSearch)
	s.mux.HandleFunc("/v1/insert", s.handleInsert)
	s.mux.HandleFunc("/v1/delete", s.handleDelete)
	s.mux.HandleFunc("/v1/fix", s.handleFix)
	s.mux.HandleFunc("/v1/purge", s.handlePurge)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SearchRequest is the /v1/search body.
type SearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k,omitempty"`
	EF     int       `json:"ef,omitempty"`
}

// SearchHit is one result row.
type SearchHit struct {
	ID   uint32  `json:"id"`
	Dist float32 `json:"dist"`
}

// SearchResponse is the /v1/search reply.
type SearchResponse struct {
	Results []SearchHit `json:"results"`
	NDC     int64       `json:"ndc"`
}

// InsertRequest is the /v1/insert body.
type InsertRequest struct {
	Vector []float32 `json:"vector"`
}

// InsertResponse is the /v1/insert reply.
type InsertResponse struct {
	ID uint32 `json:"id"`
}

// DeleteRequest is the /v1/delete body.
type DeleteRequest struct {
	ID uint32 `json:"id"`
}

// DeleteResponse is the /v1/delete reply.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// FixResponse is the /v1/fix reply.
type FixResponse struct {
	Queries    int `json:"queries"`
	NGFixEdges int `json:"ngfixEdges"`
	RFixEdges  int `json:"rfixEdges"`
}

// PurgeRequest is the /v1/purge body.
type PurgeRequest struct {
	K  int `json:"k,omitempty"`
	EF int `json:"ef,omitempty"`
}

// PurgeResponse is the /v1/purge reply.
type PurgeResponse struct {
	Purged       int `json:"purged"`
	EdgesRemoved int `json:"edgesRemoved"`
	RepairEdges  int `json:"repairEdges"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Vectors      int     `json:"vectors"`
	Live         int     `json:"live"`
	Dim          int     `json:"dim"`
	Metric       string  `json:"metric"`
	AvgDegree    float64 `json:"avgDegree"`
	SizeBytes    int64   `json:"sizeBytes"`
	PendingFix   int     `json:"pendingFix"`
	FixedQueries int     `json:"fixedQueries"`
	FixBatches   int     `json:"fixBatches"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.checkVector(req.Vector); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	k := req.K
	if k <= 0 {
		k = s.DefaultK
	}
	ef := req.EF
	if ef <= 0 {
		ef = s.DefaultEF
	}
	res, st := s.fixer.Search(req.Vector, k, ef)
	resp := SearchResponse{NDC: st.NDC, Results: make([]SearchHit, len(res))}
	for i, h := range res {
		resp.Results[i] = SearchHit{ID: h.ID, Dist: h.Dist}
	}
	writeJSON(w, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.checkVector(req.Vector); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, InsertResponse{ID: s.fixer.Insert(req.Vector)})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !s.decode(w, r, &req) {
		return
	}
	if int(req.ID) >= s.fixer.Index().G.Len() {
		httpError(w, http.StatusNotFound, fmt.Errorf("id %d out of range", req.ID))
		return
	}
	writeJSON(w, DeleteResponse{Deleted: s.fixer.Delete(req.ID)})
}

func (s *Server) handleFix(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	rep := s.fixer.FixPending()
	writeJSON(w, FixResponse{Queries: rep.Queries, NGFixEdges: rep.NGFixEdges, RFixEdges: rep.RFixEdges})
}

func (s *Server) handlePurge(w http.ResponseWriter, r *http.Request) {
	var req PurgeRequest
	if !s.decode(w, r, &req) {
		return
	}
	rep := s.fixer.PurgeAndRepair(req.K, req.EF)
	writeJSON(w, PurgeResponse{Purged: rep.Purged, EdgesRemoved: rep.EdgesRemoved, RepairEdges: rep.RepairEdges})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	g := s.fixer.Index().G
	fixed, batches := s.fixer.Stats()
	writeJSON(w, StatsResponse{
		Vectors:      g.Len(),
		Live:         g.Live(),
		Dim:          g.Dim(),
		Metric:       g.Metric.String(),
		AvgDegree:    g.AvgDegree(),
		SizeBytes:    g.SizeBytes(),
		PendingFix:   s.fixer.Pending(),
		FixedQueries: fixed,
		FixBatches:   batches,
	})
}

func (s *Server) checkVector(v []float32) error {
	if len(v) == 0 {
		return fmt.Errorf("vector is required")
	}
	if len(v) != s.fixer.Index().G.Dim() {
		return fmt.Errorf("vector dim %d != index dim %d", len(v), s.fixer.Index().G.Dim())
	}
	return nil
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers already sent; nothing useful left to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
