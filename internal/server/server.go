// Package server exposes an online-fixed NGFix index over HTTP with a
// small JSON API — the deployment shape of the paper's production story:
// the index serves searches while continuously repairing itself with the
// query stream it observes.
//
//	POST /v1/search    {"vector": [...], "k": 10, "ef": 100}
//	POST /v1/insert    {"vector": [...]}
//	POST /v1/delete    {"id": 123}
//	POST /v1/fix       {}                      — drain & fix recorded queries
//	POST /v1/purge     {"k": 30, "ef": 200}    — unlink tombstones + repair
//	POST /v1/snapshot  {}                      — force a durable snapshot
//	GET  /v1/stats
//	GET  /healthz                              — liveness (200 while the process runs)
//	GET  /readyz                               — readiness (503 until the index is
//	                                             loaded/replayed, while durability
//	                                             is degraded, and during drain)
//
// Robustness: every handler runs behind panic recovery (a bad request
// cannot kill the process) and http.MaxBytesReader (a huge body cannot
// OOM it); wrong methods get 405 with an Allow header; response-encoding
// failures are logged through an injectable logger so operators see
// malformed-response incidents.
//
// Durability honesty: when the fixer has a WAL and a journal append
// fails, the mutation is applied in memory but answered with 500 instead
// of an ack, and /readyz turns 503 ("durability degraded") until a
// snapshot succeeds — so clients and load balancers learn about at-risk
// writes immediately instead of after a crash.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync/atomic"

	"ngfix/internal/core"
)

// DefaultMaxBodyBytes caps request bodies when Server.MaxBodyBytes is
// unset: generous for high-dimensional vectors, far below OOM territory.
const DefaultMaxBodyBytes int64 = 8 << 20

// Server wires an OnlineFixer to an http.Handler.
type Server struct {
	fixer *core.OnlineFixer
	mux   *http.ServeMux
	// DefaultK / DefaultEF apply when a search request omits them.
	DefaultK, DefaultEF int
	// Logger receives malformed-response incidents and handler panics.
	// Nil uses the process-default logger.
	Logger *log.Logger
	// MaxBodyBytes caps request bodies (DefaultMaxBodyBytes when 0).
	MaxBodyBytes int64
	// SnapshotFunc backs POST /v1/snapshot; when nil the endpoint
	// reports 501 Not Implemented.
	SnapshotFunc func() error

	ready    atomic.Bool
	draining atomic.Bool
}

// New builds a Server around an online fixer. The server starts not
// ready: call SetReady(true) once the index is loaded/replayed and the
// listener is up, so /readyz tells load balancers the truth.
func New(fixer *core.OnlineFixer) *Server {
	s := &Server{fixer: fixer, mux: http.NewServeMux(), DefaultK: 10, DefaultEF: 100}
	s.mux.HandleFunc("/v1/search", s.method(http.MethodPost, s.handleSearch))
	s.mux.HandleFunc("/v1/insert", s.method(http.MethodPost, s.handleInsert))
	s.mux.HandleFunc("/v1/delete", s.method(http.MethodPost, s.handleDelete))
	s.mux.HandleFunc("/v1/fix", s.method(http.MethodPost, s.handleFix))
	s.mux.HandleFunc("/v1/purge", s.method(http.MethodPost, s.handlePurge))
	s.mux.HandleFunc("/v1/snapshot", s.method(http.MethodPost, s.handleSnapshot))
	s.mux.HandleFunc("/v1/stats", s.method(http.MethodGet, s.handleStats))
	s.mux.HandleFunc("/healthz", s.method(http.MethodGet, s.handleHealthz))
	s.mux.HandleFunc("/readyz", s.method(http.MethodGet, s.handleReadyz))
	return s
}

// SetReady flips what /readyz reports. Serving handlers are unaffected:
// readiness is advisory routing information for load balancers.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// StartDrain marks the server draining: /readyz turns 503 so balancers
// stop routing here, while in-flight and straggler requests still get
// served. Call it right before http.Server.Shutdown.
func (s *Server) StartDrain() {
	s.draining.Store(true)
	s.ready.Store(false)
}

// ServeHTTP implements http.Handler with the protective middleware:
// request bodies are size-capped, and a panicking handler answers 500
// instead of killing the process.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if !sw.wrote {
				s.httpError(sw, http.StatusInternalServerError, errors.New("internal server error"))
			}
		}
	}()
	if r.Body != nil {
		max := s.MaxBodyBytes
		if max <= 0 {
			max = DefaultMaxBodyBytes
		}
		r.Body = http.MaxBytesReader(sw, r.Body, max)
	}
	s.mux.ServeHTTP(sw, r)
}

// statusWriter tracks whether a response has started, so panic recovery
// knows if it can still write a clean 500.
type statusWriter struct {
	http.ResponseWriter
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// method enforces the HTTP verb, answering 405 with an Allow header
// otherwise.
func (s *Server) method(verb string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != verb {
			w.Header().Set("Allow", verb)
			s.httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s required", verb))
			return
		}
		h(w, r)
	}
}

// SearchRequest is the /v1/search body.
type SearchRequest struct {
	Vector []float32 `json:"vector"`
	K      int       `json:"k,omitempty"`
	EF     int       `json:"ef,omitempty"`
}

// SearchHit is one result row.
type SearchHit struct {
	ID   uint32  `json:"id"`
	Dist float32 `json:"dist"`
}

// SearchResponse is the /v1/search reply.
type SearchResponse struct {
	Results []SearchHit `json:"results"`
	NDC     int64       `json:"ndc"`
}

// InsertRequest is the /v1/insert body.
type InsertRequest struct {
	Vector []float32 `json:"vector"`
}

// InsertResponse is the /v1/insert reply.
type InsertResponse struct {
	ID uint32 `json:"id"`
}

// DeleteRequest is the /v1/delete body.
type DeleteRequest struct {
	ID uint32 `json:"id"`
}

// DeleteResponse is the /v1/delete reply.
type DeleteResponse struct {
	Deleted bool `json:"deleted"`
}

// FixResponse is the /v1/fix reply.
type FixResponse struct {
	Queries    int `json:"queries"`
	NGFixEdges int `json:"ngfixEdges"`
	RFixEdges  int `json:"rfixEdges"`
}

// PurgeRequest is the /v1/purge body.
type PurgeRequest struct {
	K  int `json:"k,omitempty"`
	EF int `json:"ef,omitempty"`
}

// PurgeResponse is the /v1/purge reply.
type PurgeResponse struct {
	Purged       int `json:"purged"`
	EdgesRemoved int `json:"edgesRemoved"`
	RepairEdges  int `json:"repairEdges"`
}

// SnapshotResponse is the /v1/snapshot reply.
type SnapshotResponse struct {
	OK bool `json:"ok"`
}

// StatsResponse is the /v1/stats reply.
type StatsResponse struct {
	Vectors      int     `json:"vectors"`
	Live         int     `json:"live"`
	Dim          int     `json:"dim"`
	Metric       string  `json:"metric"`
	AvgDegree    float64 `json:"avgDegree"`
	SizeBytes    int64   `json:"sizeBytes"`
	BaseEdges    int     `json:"baseEdges"`
	ExtraEdges   int     `json:"extraEdges"`
	PendingFix   int     `json:"pendingFix"`
	FixedQueries int     `json:"fixedQueries"`
	FixBatches   int     `json:"fixBatches"`
	ShedQueries  int     `json:"shedQueries"`
	WALErrors    int     `json:"walErrors"`
	LastWALError string  `json:"lastWALError,omitempty"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.checkVector(req.Vector); err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	k := req.K
	if k <= 0 {
		k = s.DefaultK
	}
	ef := req.EF
	if ef <= 0 {
		ef = s.DefaultEF
	}
	res, st := s.fixer.Search(req.Vector, k, ef)
	resp := SearchResponse{NDC: st.NDC, Results: make([]SearchHit, len(res))}
	for i, h := range res {
		resp.Results[i] = SearchHit{ID: h.ID, Dist: h.Dist}
	}
	s.writeJSON(w, resp)
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.checkVector(req.Vector); err != nil {
		s.httpError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.fixer.InsertChecked(req.Vector)
	if err != nil {
		// Applied in memory but not journaled: refuse the ack so the
		// client knows the write is at risk until the next snapshot.
		// Retrying after recovery inserts a second copy (ids are
		// append-only); see README "Operations".
		s.httpError(w, http.StatusInternalServerError,
			fmt.Errorf("insert applied as id %d but not journaled (durability degraded): %v", id, err))
		return
	}
	s.writeJSON(w, InsertResponse{ID: id})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !s.decode(w, r, &req) {
		return
	}
	deleted, err := s.fixer.DeleteChecked(req.ID)
	if errors.Is(err, core.ErrUnknownID) {
		s.httpError(w, http.StatusNotFound, fmt.Errorf("id %d out of range", req.ID))
		return
	}
	if err != nil {
		s.httpError(w, http.StatusInternalServerError,
			fmt.Errorf("delete %d applied but not journaled (durability degraded): %v", req.ID, err))
		return
	}
	s.writeJSON(w, DeleteResponse{Deleted: deleted})
}

func (s *Server) handleFix(w http.ResponseWriter, r *http.Request) {
	rep, err := s.fixer.FixPendingChecked()
	if err != nil {
		s.httpError(w, http.StatusInternalServerError,
			fmt.Errorf("fix batch applied (%d queries) but not journaled (durability degraded): %v", rep.Queries, err))
		return
	}
	s.writeJSON(w, FixResponse{Queries: rep.Queries, NGFixEdges: rep.NGFixEdges, RFixEdges: rep.RFixEdges})
}

func (s *Server) handlePurge(w http.ResponseWriter, r *http.Request) {
	var req PurgeRequest
	if !s.decode(w, r, &req) {
		return
	}
	rep := s.fixer.PurgeAndRepair(req.K, req.EF)
	s.writeJSON(w, PurgeResponse{Purged: rep.Purged, EdgesRemoved: rep.EdgesRemoved, RepairEdges: rep.RepairEdges})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.SnapshotFunc == nil {
		s.httpError(w, http.StatusNotImplemented, errors.New("persistence not configured (start with -snapshot-dir)"))
		return
	}
	if err := s.SnapshotFunc(); err != nil {
		s.httpError(w, http.StatusInternalServerError, fmt.Errorf("snapshot failed: %v", err))
		return
	}
	s.writeJSON(w, SnapshotResponse{OK: true})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// One OnlineStats call: graph numbers must come from under the
	// fixer's lock, never from unlocked reads through Index().
	ost := s.fixer.OnlineStats()
	s.writeJSON(w, StatsResponse{
		Vectors:      ost.Vectors,
		Live:         ost.Live,
		Dim:          ost.Dim,
		Metric:       ost.Metric.String(),
		AvgDegree:    ost.AvgDegree,
		SizeBytes:    ost.SizeBytes,
		BaseEdges:    ost.BaseEdges,
		ExtraEdges:   ost.ExtraEdges,
		PendingFix:   ost.Pending,
		FixedQueries: ost.FixedQueries,
		FixBatches:   ost.FixBatches,
		ShedQueries:  ost.ShedQueries,
		WALErrors:    ost.WALErrors,
		LastWALError: ost.LastWALError,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		msg := "index not ready"
		if s.draining.Load() {
			msg = "draining"
		}
		s.httpError(w, http.StatusServiceUnavailable, errors.New(msg))
		return
	}
	if s.fixer.Degraded() {
		// Searches still work, but acknowledged writes may not survive a
		// crash until a snapshot succeeds — stop routing traffic here.
		s.httpError(w, http.StatusServiceUnavailable, errors.New("durability degraded (WAL failing; snapshot to recover)"))
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *Server) checkVector(v []float32) error {
	if len(v) == 0 {
		return fmt.Errorf("vector is required")
	}
	if dim := s.fixer.Dim(); len(v) != dim {
		return fmt.Errorf("vector dim %d != index dim %d", len(v), dim)
	}
	return nil
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.Logger != nil {
		s.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already on the wire; all that is left is making the
		// incident visible to operators.
		s.logf("server: encode %T response: %v", v, err)
	}
}

func (s *Server) httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		s.logf("server: encode %d error response: %v", code, encErr)
	}
}
