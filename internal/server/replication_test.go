package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/persist"
	"ngfix/internal/replica"
	"ngfix/internal/shard"
	"ngfix/internal/vec"
)

// stallStoreWAL delegates to a real store but can be switched to stall
// (append blocks holding the fixer's write lock — the frozen-disk
// failure) or fail (append errors — the degraded-durability failure).
// Both failure modes leave the store's on-disk state exactly as it was,
// which is what a replica keeps serving from.
type stallStoreWAL struct {
	st      *persist.Store
	stall   atomic.Bool
	fail    atomic.Bool
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

func newStallStoreWAL(st *persist.Store) *stallStoreWAL {
	return &stallStoreWAL{st: st, entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (w *stallStoreWAL) unblock() { w.once.Do(func() { close(w.release) }) }

func (w *stallStoreWAL) gate() error {
	if w.fail.Load() {
		return errShardDisk
	}
	if w.stall.Load() {
		w.entered <- struct{}{}
		<-w.release
	}
	return nil
}

func (w *stallStoreWAL) LogInsert(v []float32) error {
	if err := w.gate(); err != nil {
		return err
	}
	return w.st.LogInsert(v)
}

func (w *stallStoreWAL) LogDelete(id uint32) error {
	if err := w.gate(); err != nil {
		return err
	}
	return w.st.LogDelete(id)
}

func (w *stallStoreWAL) LogFixEdges(u []graph.ExtraUpdate) error {
	if err := w.gate(); err != nil {
		return err
	}
	return w.st.LogFixEdges(u)
}

func (w *stallStoreWAL) Snapshot(g *graph.Graph) error { return w.st.Snapshot(g) }

var replOpts = core.Options{Rounds: []core.Round{{K: 15}}, LEx: 24}

type replicatedServer struct {
	ts     *httptest.Server
	s      *Server
	g      *shard.Group
	d      *dataset.Dataset
	stores []*persist.Store
	set    *replica.Set
	wal0   *stallStoreWAL
}

// newReplicatedTestServer wires the full failover deployment: a 2-shard
// leader whose stores feed one hot read replica per shard, the group
// hedging reads to those replicas, and the server exposing replication
// endpoints, replica stats, and replica metrics. Shard 0's WAL can be
// stalled or failed at will.
func newReplicatedTestServer(t *testing.T, after time.Duration) *replicatedServer {
	t.Helper()
	d := dataset.Generate(dataset.Config{
		Name: "repl", N: 400, NHist: 80, NTest: 20,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 7,
	})
	const n = 2
	stores, err := persist.OpenSharded(t.TempDir(), n, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := shard.Partition(d.Base, n)
	fixers := make([]*core.OnlineFixer, n)
	wal0 := newStallStoreWAL(stores[0])
	for i, p := range parts {
		var wal core.WAL = stores[i]
		if i == 0 {
			wal = wal0
		}
		h := hnsw.Build(p, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
		ix := core.New(h.Bottom(), replOpts)
		fixers[i] = core.NewOnlineFixer(ix, core.OnlineConfig{BatchSize: 1 << 20, WAL: wal})
	}
	g, err := shard.NewGroup(fixers)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Snapshot(); err != nil {
		t.Fatal(err)
	}

	reps := make([]*replica.Replica, n)
	rr := make([]shard.ReadReplica, n)
	shardRegs := make([]*obs.Registry, n)
	for i := range reps {
		reps[i] = replica.New(replica.StoreSource{St: stores[i]}, replica.Config{
			Shard: i, Opts: replOpts,
			Poll: 2 * time.Millisecond, Backoff: time.Millisecond, Logf: t.Logf,
		})
		rr[i] = reps[i]
		shardRegs[i] = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		reps[i].RegisterMetrics(shardRegs[i])
	}
	set, err := replica.NewSet(reps)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); set.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	if err := g.SetReplicas(rr, shard.FailoverPolicy{After: after}); err != nil {
		t.Fatal(err)
	}

	s := NewSharded(g)
	s.SnapshotFunc = g.Snapshot
	s.SetStores(stores)
	s.Replicas = set
	s.EnableMetrics(obs.NewRegistry(), shardRegs...)
	s.SetReady(true)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	// LIFO: the stall must release before ts.Close waits on in-flight
	// requests (see blockingWAL).
	t.Cleanup(wal0.unblock)

	waitForCond(t, "replicas ready", set.Ready)
	return &replicatedServer{ts: ts, s: s, g: g, d: d, stores: stores, set: set, wal0: wal0}
}

// TestFailoverEndToEnd is the acceptance scenario: shard 0's WAL freezes
// mid-append holding the write lock, so its primary cannot answer reads.
// The hedge must serve the query from the replica — answered fast,
// flagged stale, failover counted on /metrics and /v1/stats — and the
// primary must take reads back once unfrozen.
func TestFailoverEndToEnd(t *testing.T) {
	rs := newReplicatedTestServer(t, 10*time.Millisecond)

	// Healthy: fresh answers, replica block present and caught up.
	var sr SearchResponse
	if resp := post(t, rs.ts.URL+"/v1/search", SearchRequest{Vector: rs.d.TestOOD.Row(0), K: IntPtr(5), EF: IntPtr(40)}, &sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if sr.Stale {
		t.Fatal("healthy search answered stale")
	}
	st := getStats(t, rs.ts.URL)
	if len(st.Replica) != 2 {
		t.Fatalf("stats replica block has %d entries, want 2", len(st.Replica))
	}
	for i, r := range st.Replica {
		if r.Shard != i || !r.Ready {
			t.Fatalf("replica %d status %+v", i, r)
		}
	}

	// Freeze shard 0: two concurrent inserts — round-robin lands one on
	// shard 0, where it blocks inside the WAL holding the write lock.
	rs.wal0.stall.Store(true)
	for i := 0; i < 2; i++ {
		go rs.g.InsertChecked(rs.d.History.Row(i))
	}
	select {
	case <-rs.wal0.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("insert never reached the stalled WAL")
	}

	start := time.Now()
	sr = SearchResponse{}
	if resp := post(t, rs.ts.URL+"/v1/search", SearchRequest{Vector: rs.d.TestOOD.Row(1), K: IntPtr(5), EF: IntPtr(40)}, &sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("search during freeze: status %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("frozen-shard search took %v; the hedge should fire after ~10ms", elapsed)
	}
	if !sr.Stale {
		t.Fatal("frozen-shard search not flagged stale")
	}
	if len(sr.Results) == 0 {
		t.Fatal("frozen-shard search returned no results")
	}

	// The failover is visible on /metrics while the shard is still
	// frozen: the replica families are Func-backed atomics, so the scrape
	// never touches the wedged fixer's lock. (/v1/stats does — it reads
	// graph numbers under each fixer's lock — so it is checked after the
	// thaw.)
	samples := scrapeMetrics(t, rs.ts.URL)
	if v, ok := samples[`ngfix_replica_failovers_total{shard="0"}`]; !ok || v < 1 {
		t.Fatalf("ngfix_replica_failovers_total{shard=\"0\"} = %v (present %v), want >= 1", v, ok)
	}
	if v := samples[`ngfix_replica_failovers_total{shard="1"}`]; v != 0 {
		t.Fatalf("healthy shard counted %v failovers", v)
	}

	// Thaw: the blocked insert completes, reads return to the primary,
	// and the stats replica block remembers the failover.
	rs.wal0.stall.Store(false)
	rs.wal0.unblock()
	waitForCond(t, "fresh answers after thaw", func() bool {
		var out SearchResponse
		resp := post(t, rs.ts.URL+"/v1/search", SearchRequest{Vector: rs.d.TestOOD.Row(2), K: IntPtr(5), EF: IntPtr(40)}, &out)
		return resp.StatusCode == http.StatusOK && !out.Stale
	})
	if st := getStats(t, rs.ts.URL); st.Replica[0].Failovers < 1 {
		t.Fatalf("stats replica block missed the failover: %+v", st.Replica[0])
	}
}

func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	return samples
}

// TestReadyzCoveredByReplica pins the covered-degradation contract: a
// shard whose durability failed but whose reads a ready replica covers
// answers 200 with a "degraded, serving from replica" detail instead of
// going dark, and recovers to a plain ok after a successful snapshot.
func TestReadyzCoveredByReplica(t *testing.T) {
	rs := newReplicatedTestServer(t, 0)

	readyz := func() (int, string) {
		resp, err := http.Get(rs.ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := readyz(); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("healthy readyz: %d %q", code, body)
	}

	// Trip shard 0's durability: the routed delete fails its journal
	// append, marking the shard degraded. The replica still covers reads.
	rs.wal0.fail.Store(true)
	if _, err := rs.g.Fixer(0).DeleteChecked(0); err == nil {
		t.Fatal("delete with failing WAL did not surface the journal error")
	}
	code, body := readyz()
	if code != http.StatusOK {
		t.Fatalf("covered degraded shard answered %d (%q), want 200 with detail", code, body)
	}
	if !strings.Contains(body, "degraded, serving from replica") || !strings.Contains(body, "[0]") {
		t.Fatalf("covered readyz detail missing: %q", body)
	}

	// Durability recovers via snapshot → plain ok again.
	rs.wal0.fail.Store(false)
	if err := rs.g.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if code, body := readyz(); code != http.StatusOK || strings.Contains(body, "degraded") {
		t.Fatalf("recovered readyz: %d %q", code, body)
	}
}

// TestReplicateEndpointsAndFollower drives the cross-machine deployment:
// a follower server whose per-shard replicas pull from the leader's
// /v1/replicate/* endpoints. It must converge to the leader's answers,
// flag everything stale, resync across a leader generation bump, and the
// wire protocol must answer 410 for rotated generations and 400/501 for
// bad requests.
func TestReplicateEndpointsAndFollower(t *testing.T) {
	rs := newReplicatedTestServer(t, 0)
	const n = 2

	reps := make([]*replica.Replica, n)
	regs := make([]*obs.Registry, n)
	for i := range reps {
		reps[i] = replica.New(replica.HTTPSource{Base: rs.ts.URL, Shard: i}, replica.Config{
			Shard: i, Opts: replOpts,
			Poll: 2 * time.Millisecond, Backoff: time.Millisecond, Logf: t.Logf,
		})
		regs[i] = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		reps[i].RegisterMetrics(regs[i])
	}
	set, err := replica.NewSet(reps)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); set.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })

	fol := NewFollower(set)
	fol.EnableMetrics(regs...)
	fts := httptest.NewServer(fol)
	t.Cleanup(fts.Close)

	caughtUp := func() bool {
		for i, r := range reps {
			ls := rs.stores[i].ReplicationStatus()
			st := r.Status()
			if !st.Ready || st.Generation != ls.Generation || st.AppliedBytes != ls.WALBytes {
				return false
			}
		}
		return true
	}

	// Mutations through the leader's public API...
	for i := 0; i < 4; i++ {
		if resp := post(t, rs.ts.URL+"/v1/insert", InsertRequest{Vector: rs.d.History.Row(i)}, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("insert status %d", resp.StatusCode)
		}
	}
	waitForCond(t, "follower caught up over HTTP", caughtUp)

	// ...are visible through the follower, stale-flagged, and identical
	// to the leader's answer (bit-identical replicas merge identically).
	q := rs.d.TestOOD.Row(0)
	var want, got SearchResponse
	if resp := post(t, rs.ts.URL+"/v1/search", SearchRequest{Vector: q, K: IntPtr(5), EF: IntPtr(40)}, &want); resp.StatusCode != http.StatusOK {
		t.Fatalf("leader search status %d", resp.StatusCode)
	}
	if resp := post(t, fts.URL+"/v1/search", SearchRequest{Vector: q, K: IntPtr(5), EF: IntPtr(40)}, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("follower search status %d", resp.StatusCode)
	}
	if !got.Stale {
		t.Fatal("follower answer not flagged stale")
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("follower returned %d results, leader %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i] != want.Results[i] {
			t.Fatalf("result %d: follower %+v, leader %+v", i, got.Results[i], want.Results[i])
		}
	}

	// Follower health surface: readyz ok, stats carries the replica
	// blocks, metrics expose the shard-labeled replica families.
	if resp, err := http.Get(fts.URL + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("follower readyz: %v %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	fresp, err := http.Get(fts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var fst FollowerStatsResponse
	if err := decodeBody(fresp, &fst); err != nil {
		t.Fatal(err)
	}
	if fst.Shards != n || !fst.Ready || len(fst.Replica) != n {
		t.Fatalf("follower stats %+v", fst)
	}
	samples := scrapeMetrics(t, fts.URL)
	for _, key := range []string{`ngfix_replica_ready{shard="0"}`, `ngfix_replica_ready{shard="1"}`} {
		if v, ok := samples[key]; !ok || v != 1 {
			t.Fatalf("follower metrics %s = %v (present %v), want 1", key, v, ok)
		}
	}

	// Mutations have no route on a follower.
	if resp := post(t, fts.URL+"/v1/insert", InsertRequest{Vector: q}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("follower insert status %d, want 404", resp.StatusCode)
	}

	// Leader generation bump mid-tail: the old WAL answers 410 on the
	// wire, and the follower resyncs and converges.
	oldGen := rs.stores[0].Generation()
	if resp := post(t, rs.ts.URL+"/v1/snapshot", struct{}{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status %d", resp.StatusCode)
	}
	if resp := post(t, rs.ts.URL+"/v1/insert", InsertRequest{Vector: rs.d.History.Row(5)}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-bump insert status %d", resp.StatusCode)
	}
	waitForCond(t, "follower resynced past generation bump", caughtUp)
	resynced := false
	for _, st := range set.Statuses() {
		if st.Resyncs > 0 {
			resynced = true
		}
	}
	if !resynced {
		t.Fatal("no replica recorded a resync across the generation bump")
	}
	goneURL := rs.ts.URL + "/v1/replicate/wal?shard=0&gen=" + strconv.FormatUint(oldGen, 10) + "&offset=0"
	if resp, err := http.Get(goneURL); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusGone {
			t.Fatalf("rotated generation answered %d, want 410", resp.StatusCode)
		}
	}

	// Wire validation: out-of-range shard → 400; snapshot carries the
	// generation header; a server without stores → 501.
	if resp, err := http.Get(rs.ts.URL + "/v1/replicate/status?shard=9"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad shard answered %d, want 400", resp.StatusCode)
		}
	}
	if resp, err := http.Get(rs.ts.URL + "/v1/replicate/snapshot?shard=0"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get(replica.GenerationHeader) == "" {
			t.Fatal("snapshot response missing generation header")
		}
	}
	plain, _ := newTestServer(t)
	if resp, err := http.Get(plain.URL + "/v1/replicate/status?shard=0"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("storeless server answered %d, want 501", resp.StatusCode)
		}
	}
}

func decodeBody(resp *http.Response, out interface{}) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestStatsOmitsReplicaWithoutReplicas pins response-shape stability: a
// server with no replicas configured serves /v1/stats and /v1/search
// bodies byte-identical in shape to the pre-replication server — no
// "replica" block, no "stale" field — so existing dashboards and clients
// see nothing new until the operator opts in.
func TestStatsOmitsReplicaWithoutReplicas(t *testing.T) {
	ts, _, g, d := newShardedTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), `"replica"`) {
		t.Fatalf("stats body leaks a replica block with no replicas configured:\n%s", body)
	}
	if !g.HasReplicas() {
		var buf strings.Builder
		sresp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(0), K: IntPtr(3), EF: IntPtr(30)}, nil)
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("search status %d", sresp.StatusCode)
		}
		if _, err := io.Copy(&buf, sresp.Body); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(buf.String(), `"stale"`) {
			t.Fatalf("search body leaks a stale field with no replicas configured:\n%s", buf.String())
		}
	}
}
