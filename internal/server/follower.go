package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"

	"ngfix/internal/obs"
	"ngfix/internal/replica"
)

// Follower serves a replica-only node: a process started with
// -replica-of that holds no primaries, just one read replica per shard
// of some leader. It speaks the same /v1/search request and response
// shapes as the full server so clients and load balancers need no
// special casing — every answer simply carries "stale": true, because a
// follower's answers are by construction as fresh as its replication
// position, not the leader's.
//
// Mutations have no route here (404): a follower's state is the
// leader's WAL, nothing else, which is what keeps it bit-identical and
// makes failing over to it safe.
//
//	POST /v1/search   — read-only scatter over the shard replicas
//	GET  /v1/stats    — per-shard replica status (generation, lag, errors)
//	GET  /healthz     — 200 while the process runs
//	GET  /readyz      — 503 until every shard replica is bootstrapped and
//	                    within its configured lag bound
//	GET  /metrics     — ngfix_replica_* families, shard-labeled
type Follower struct {
	set *replica.Set
	mux *http.ServeMux
	// DefaultK / DefaultEF apply when a search request omits them.
	DefaultK, DefaultEF int
	// Logger receives malformed-response incidents and handler panics.
	Logger *log.Logger
	// MaxBodyBytes caps request bodies (DefaultMaxBodyBytes when 0).
	MaxBodyBytes int64

	metricsRegs []*obs.Registry
}

// NewFollower builds a follower server over a replica set. The caller
// drives the set (Set.Run) separately.
func NewFollower(set *replica.Set) *Follower {
	f := &Follower{set: set, mux: http.NewServeMux(), DefaultK: 10, DefaultEF: 100}
	f.mux.HandleFunc("/v1/search", f.method(http.MethodPost, f.handleSearch))
	f.mux.HandleFunc("/v1/stats", f.method(http.MethodGet, f.handleStats))
	f.mux.HandleFunc("/healthz", f.method(http.MethodGet, f.handleHealthz))
	f.mux.HandleFunc("/readyz", f.method(http.MethodGet, f.handleReadyz))
	f.mux.HandleFunc("/metrics", f.method(http.MethodGet, f.handleMetrics))
	return f
}

// EnableMetrics makes GET /metrics serve the merged exposition of the
// given registries (the caller registers each replica's families on a
// shard-labeled registry first).
func (f *Follower) EnableMetrics(regs ...*obs.Registry) { f.metricsRegs = regs }

// ServeHTTP implements http.Handler with the same protective middleware
// as the full server: size-capped bodies, panic recovery.
func (f *Follower) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w}
	defer func() {
		if rec := recover(); rec != nil {
			f.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			if !sw.wrote {
				f.httpError(sw, http.StatusInternalServerError, errors.New("internal server error"))
			}
		}
	}()
	if r.Body != nil {
		max := f.MaxBodyBytes
		if max <= 0 {
			max = DefaultMaxBodyBytes
		}
		r.Body = http.MaxBytesReader(sw, r.Body, max)
	}
	f.mux.ServeHTTP(sw, r)
}

func (f *Follower) method(verb string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != verb {
			w.Header().Set("Allow", verb)
			f.httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("%s required", verb))
			return
		}
		h(w, r)
	}
}

func (f *Follower) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		f.httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
		return
	}
	if len(req.Vector) == 0 {
		f.httpError(w, http.StatusBadRequest, errors.New("vector is required"))
		return
	}
	dim := f.set.Dim()
	if dim == 0 {
		// No shard has bootstrapped: there is nothing to validate against,
		// let alone search.
		f.httpError(w, http.StatusServiceUnavailable, errors.New("replica not bootstrapped yet"))
		return
	}
	if len(req.Vector) != dim {
		f.httpError(w, http.StatusBadRequest,
			fmt.Errorf("vector dim %d != index dim %d", len(req.Vector), dim))
		return
	}
	k := f.DefaultK
	if req.K != nil {
		if *req.K <= 0 {
			f.httpError(w, http.StatusBadRequest, fmt.Errorf("k must be at least 1, got %d", *req.K))
			return
		}
		k = *req.K
	}
	ef := f.DefaultEF
	if ef < k {
		ef = k
	}
	if req.EF != nil {
		if *req.EF < k {
			f.httpError(w, http.StatusBadRequest, fmt.Errorf("ef (%d) must be at least k (%d)", *req.EF, k))
			return
		}
		ef = *req.EF
	}
	res, st := f.set.SearchCtx(r.Context(), req.Vector, k, ef)
	resp := SearchResponse{
		NDC: st.NDC, Truncated: st.Truncated,
		EFUsed: ef, Stale: true,
		Results: make([]SearchHit, len(res)),
	}
	for i, h := range res {
		resp.Results[i] = SearchHit{ID: h.ID, Dist: h.Dist}
	}
	f.writeJSON(w, resp)
}

// FollowerStatsResponse is the follower's /v1/stats reply: replication
// state only, because replication state is all a follower has.
type FollowerStatsResponse struct {
	Shards  int              `json:"shards"`
	Ready   bool             `json:"ready"`
	Replica []replica.Status `json:"replica"`
}

func (f *Follower) handleStats(w http.ResponseWriter, r *http.Request) {
	f.writeJSON(w, FollowerStatsResponse{
		Shards:  f.set.Shards(),
		Ready:   f.set.Ready(),
		Replica: f.set.Statuses(),
	})
}

func (f *Follower) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (f *Follower) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, st := range f.set.Statuses() {
		if !st.Ready {
			why := "bootstrapping"
			if st.Generation > 0 {
				why = fmt.Sprintf("lagging (%d bytes, %d generations behind)", st.Lag.Bytes, st.Lag.Generations)
			}
			f.httpError(w, http.StatusServiceUnavailable,
				fmt.Errorf("shard %d replica %s", st.Shard, why))
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (f *Follower) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if len(f.metricsRegs) == 0 {
		http.Error(w, "metrics not enabled", http.StatusNotFound)
		return
	}
	obs.MergedHandler(f.metricsRegs...).ServeHTTP(w, r)
}

func (f *Follower) logf(format string, args ...interface{}) {
	if f.Logger != nil {
		f.Logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (f *Follower) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		f.logf("server: encode %T response: %v", v, err)
	}
}

func (f *Follower) httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		f.logf("server: encode %d error response: %v", code, encErr)
	}
}
