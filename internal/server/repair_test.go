package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/repair"
	"ngfix/internal/vec"
)

// repairTestServer builds a single-shard server whose fixer the test
// keeps a handle on, so it can attach a repair fleet and feed queries
// directly.
func repairTestServer(t *testing.T, wal core.WAL, snapshotEvery int) (*httptest.Server, *Server, *core.OnlineFixer, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(dataset.Config{
		Name: "srv-repair", N: 400, NHist: 80, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 5,
	})
	h := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
	ix := core.New(h.Bottom(), core.Options{Rounds: []core.Round{{K: 15}}, LEx: 24})
	fixer := core.NewOnlineFixer(ix, core.OnlineConfig{
		BatchSize: 50, PrepEF: 80, WAL: wal, SnapshotEveryBatches: snapshotEvery,
	})
	s := New(fixer)
	s.SetReady(true)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, fixer, d
}

// With a repair fleet attached, /v1/stats carries the aggregate mode
// plus per-shard controller status, and every slow-query line is
// attributed with the repair mode active while the search ran.
func TestStatsAndSlowQueriesSurfaceRepair(t *testing.T) {
	ts, s, fixer, d := repairTestServer(t, nil, 0)
	ctl := repair.New(0, fixer, nil, repair.Config{Interval: time.Hour})
	s.SetRepair(repair.NewFleet(ctl))

	var mu sync.Mutex
	var lines []string
	s.SlowQueries = &obs.SlowQueryLog{
		Threshold: time.Nanosecond, // everything is slow: exercises the attribution
		Logf: func(format string, args ...interface{}) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}

	var sr SearchResponse
	post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(0), K: IntPtr(5), EF: IntPtr(20)}, &sr)
	mu.Lock()
	if len(lines) != 1 || !strings.Contains(lines[0], "repair=steady") {
		mu.Unlock()
		t.Fatalf("slow-query attribution missing: %q", lines)
	}
	mu.Unlock()

	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RepairMode != "steady" {
		t.Fatalf("stats repairMode %q, want steady", st.RepairMode)
	}
	if len(st.Repair) != 1 || st.Repair[0].Shard != 0 || st.Repair[0].Mode != "steady" {
		t.Fatalf("stats repair block: %+v", st.Repair)
	}
	if st.Repair[0].Wedged {
		t.Fatalf("fresh controller reported wedged: %+v", st.Repair[0])
	}

	// Without a fleet the fields stay omitted — pre-adaptive dashboards
	// see an unchanged payload.
	s.SetRepair(nil)
	body := getBody(t, ts.URL+"/v1/stats")
	if strings.Contains(body, "repairMode") || strings.Contains(body, `"repair"`) {
		t.Fatalf("repair fields leaked without a fleet: %s", body)
	}
}

// snapPanicWAL panics inside Snapshot while failing is set — with
// SnapshotEveryBatches=1 every fix batch becomes a durability failure,
// the deterministic way to wedge a real controller end to end.
type snapPanicWAL struct {
	mu      sync.Mutex
	failing bool
}

func (w *snapPanicWAL) setFailing(b bool) { w.mu.Lock(); w.failing = b; w.mu.Unlock() }

func (w *snapPanicWAL) LogInsert([]float32) error             { return nil }
func (w *snapPanicWAL) LogDelete(uint32) error                { return nil }
func (w *snapPanicWAL) LogFixEdges([]graph.ExtraUpdate) error { return nil }
func (w *snapPanicWAL) Snapshot(*graph.Graph) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failing {
		panic("snapshot device detached")
	}
	return nil
}

// A controller wedged on consecutive durability failures must flip
// /readyz to 503 with the wedge named — and a single recovered batch
// must bring readiness back, matching the degraded-durability lifecycle.
func TestReadyzWedgedRepairLifecycle(t *testing.T) {
	wal := &snapPanicWAL{failing: true}
	ts, s, fixer, d := repairTestServer(t, wal, 1)
	ctl := repair.New(0, fixer, nil, repair.Config{Interval: time.Millisecond})
	fleet := repair.NewFleet(ctl)
	s.SetRepair(fleet)

	ctx, cancel := context.WithCancel(context.Background())
	go fleet.Run(ctx, nil)
	feederDone := make(chan struct{})
	go func() { // failed batches drain their queries: keep the signal coming
		defer close(feederDone)
		for i := 0; ; i++ {
			select {
			case <-ctx.Done():
				return
			case <-time.After(200 * time.Microsecond):
				fixer.Search(d.History.Row(i%80), 5, 15)
			}
		}
	}()
	t.Cleanup(func() { cancel(); <-feederDone })

	waitFor(t, 10*time.Second, "controller to wedge", func() bool {
		return len(fleet.WedgedShards()) > 0
	})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while wedged: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "repair wedged in backoff") {
		t.Fatalf("/readyz does not name the wedge: %s", body)
	}
	var st StatsResponse
	r2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if st.RepairMode != "backoff" || len(st.Repair) != 1 {
		t.Fatalf("wedged stats: mode %q repair %+v", st.RepairMode, st.Repair)
	}
	if w := st.Repair[0]; !w.Wedged || w.Reason != "wal_error" || w.LastError == "" {
		t.Fatalf("wedged controller status: %+v", w)
	}

	wal.setFailing(false)
	waitFor(t, 10*time.Second, "readiness to recover", func() bool {
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		defer r.Body.Close()
		io.Copy(io.Discard, r.Body)
		return r.StatusCode == http.StatusOK
	})
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func waitFor(t *testing.T, timeout time.Duration, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
