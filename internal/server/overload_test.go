package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"ngfix/internal/admission"
	"ngfix/internal/graph"
)

// blockingWAL stalls LogInsert until released — a slow disk seam. The
// insert holds the fixer's write lock while stalled, so every search
// behind it blocks too: exactly the scenario where admission control has
// to shed instead of letting goroutines stack unboundedly.
type blockingWAL struct {
	entered chan struct{}
	release chan struct{}
	once    sync.Once
}

// Callers must register w.unblock with t.Cleanup AFTER creating the
// httptest server: cleanups run last-in-first-out, and the server's
// Close waits for in-flight requests, so the stall has to be released
// before Close runs or a failing assertion mid-stall hangs the binary.
func newBlockingWAL() *blockingWAL {
	return &blockingWAL{entered: make(chan struct{}, 16), release: make(chan struct{})}
}

func (w *blockingWAL) unblock() { w.once.Do(func() { close(w.release) }) }

func (w *blockingWAL) LogInsert(v []float32) error {
	w.entered <- struct{}{}
	<-w.release
	return nil
}
func (w *blockingWAL) LogDelete(id uint32) error               { return nil }
func (w *blockingWAL) LogFixEdges(u []graph.ExtraUpdate) error { return nil }
func (w *blockingWAL) Snapshot(g *graph.Graph) error           { return nil }

func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBurstShedsDuringWALStall is the acceptance scenario end to end: a
// slow-disk WAL stall wedges the write lock during a search burst. The
// server must (a) keep exactly capacity+queue requests in play and
// answer everyone else 429+Retry-After immediately, (b) time queued
// waiters out against the server budget, (c) return partial results with
// truncated:true from the in-flight searches once the lock frees — their
// deadline fired while they were wedged — and (d) keep the goroutine
// count bounded the whole time. Run with -race.
func TestBurstShedsDuringWALStall(t *testing.T) {
	wal := newBlockingWAL()
	ts, s, d := newTestServerWAL(t, wal)
	t.Cleanup(wal.unblock)
	s.Admission = admission.New(admission.Config{Capacity: 3, QueueDepth: 2, CostUnitEF: 100})
	s.SearchTimeout = 300 * time.Millisecond
	client := ts.Client()

	// Stall the disk mid-insert: the fixer's write lock is now held.
	insertDone := make(chan int, 1)
	go func() {
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(InsertRequest{Vector: d.TestOOD.Row(0)})
		resp, err := client.Post(ts.URL+"/v1/insert", "application/json", &buf)
		if err != nil {
			insertDone <- -1
			return
		}
		resp.Body.Close()
		insertDone <- resp.StatusCode
	}()
	<-wal.entered

	baseline := runtime.NumGoroutine()

	// Burst: far more searches than capacity (3, one unit held by the
	// stalled insert) plus queue (2) can hold.
	const burst = 24
	type result struct {
		code      int
		retry     string
		truncated bool
		elapsed   time.Duration
	}
	results := make(chan result, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(SearchRequest{Vector: d.History.Row(i), K: IntPtr(5), EF: IntPtr(30)})
			start := time.Now()
			resp, err := client.Post(ts.URL+"/v1/search", "application/json", &buf)
			if err != nil {
				results <- result{code: -1}
				return
			}
			var sr SearchResponse
			json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			results <- result{
				code: resp.StatusCode, retry: resp.Header.Get("Retry-After"),
				truncated: sr.Truncated, elapsed: time.Since(start),
			}
		}(i)
	}

	// While wedged, the goroutine count is bounded by the burst we sent —
	// each in-flight HTTP exchange costs a handful of goroutines (client
	// transport loops, server conn, background reader), but nothing may
	// stack on top of that per-request constant.
	waitForCond(t, "burst in flight", func() bool {
		return s.Admission.Stats().Shed > 0
	})
	if n := runtime.NumGoroutine(); n > baseline+6*burst {
		t.Fatalf("goroutines ballooned during stall: %d (baseline %d, burst %d)", n, baseline, burst)
	}

	// Free the disk after every shed/timeout has played out.
	waitForCond(t, "queue drained by timeouts", func() bool {
		st := s.Admission.Stats()
		return st.Queued == 0 && st.Shed >= burst-4
	})
	wal.unblock()

	wg.Wait()
	close(results)
	var n200, n429, nTrunc int
	var shedLat []time.Duration
	for r := range results {
		switch r.code {
		case http.StatusOK:
			n200++
			if r.truncated {
				nTrunc++
			}
		case http.StatusTooManyRequests:
			n429++
			if r.retry == "" {
				t.Fatal("429 without Retry-After")
			}
			shedLat = append(shedLat, r.elapsed)
		default:
			t.Fatalf("unexpected status %d", r.code)
		}
	}
	// Capacity 3 minus the stalled insert leaves 2 searches in flight;
	// everyone else was shed at the door or timed out in the queue.
	if n200 != 2 || n429 != burst-2 {
		t.Fatalf("burst outcome: %d OK, %d shed (want 2 and %d)", n200, n429, burst-2)
	}
	// The in-flight searches sat past their 300ms budget behind the lock,
	// so they must have come back partial, not complete.
	if nTrunc != n200 {
		t.Fatalf("%d of %d in-flight searches reported truncation", nTrunc, n200)
	}
	// Shedding is immediate: even p99 of the shed responses is far below
	// the stall duration (bounded by the queue-wait budget).
	sort.Slice(shedLat, func(i, j int) bool { return shedLat[i] < shedLat[j] })
	if p99 := shedLat[len(shedLat)*99/100]; p99 > 2*time.Second {
		t.Fatalf("shed p99 %s: shedding is supposed to be immediate", p99)
	}

	if code := <-insertDone; code != http.StatusOK {
		t.Fatalf("stalled insert finished with %d", code)
	}

	// Counters made it to /v1/stats.
	st := getStats(t, ts.URL)
	if st.Admission == nil || st.Admission.Shed < uint64(burst-4) || st.TruncatedSearches < 2 {
		t.Fatalf("overload counters not surfaced: %+v", st)
	}
	if st.Admission.MaxQueued > 2 {
		t.Fatalf("queue exceeded its bound: %+v", st.Admission)
	}

	// Recovered: normal serving, goroutines back to earth.
	var sr SearchResponse
	if resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1), K: IntPtr(3), EF: IntPtr(30)}, &sr); resp.StatusCode != http.StatusOK || sr.Truncated {
		t.Fatalf("post-recovery search: status %d truncated %v", resp.StatusCode, sr.Truncated)
	}
	waitForCond(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline+8
	})
}

// A search whose server budget has already expired when it reaches the
// beam must answer 200 with the partial results it has and truncated:
// true — not hang, not 500.
func TestExpiredBudgetReturnsTruncatedPartial(t *testing.T) {
	ts, s, d := newTestServerFull(t)
	s.SearchTimeout = time.Nanosecond
	var sr SearchResponse
	resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(0), K: IntPtr(5), EF: IntPtr(50)}, &sr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !sr.Truncated {
		t.Fatal("expired budget not reported as truncated")
	}
	if len(sr.Results) > 5 {
		t.Fatalf("truncated search returned %d results", len(sr.Results))
	}
	if st := getStats(t, ts.URL); st.TruncatedSearches != 1 {
		t.Fatalf("TruncatedSearches = %d, want 1", st.TruncatedSearches)
	}
	// Restore the budget: full answers resume.
	s.SearchTimeout = 0
	var full SearchResponse
	resp = post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1), K: IntPtr(5), EF: IntPtr(50)}, &full)
	if resp.StatusCode != http.StatusOK || full.Truncated || len(full.Results) != 5 {
		t.Fatalf("recovered search: status %d truncated %v results %d", resp.StatusCode, full.Truncated, len(full.Results))
	}
}

// Mass client disconnect during a WAL stall: queued waiters must leave
// the queue promptly (freeing their slots), the server must survive, and
// every goroutine must drain once the stall clears.
func TestMassClientDisconnectDuringStall(t *testing.T) {
	wal := newBlockingWAL()
	ts, s, d := newTestServerWAL(t, wal)
	t.Cleanup(wal.unblock)
	s.Admission = admission.New(admission.Config{Capacity: 2, QueueDepth: 4, CostUnitEF: 100})
	client := ts.Client()

	insertDone := make(chan struct{})
	go func() {
		defer close(insertDone)
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(InsertRequest{Vector: d.TestOOD.Row(0)})
		if resp, err := client.Post(ts.URL+"/v1/insert", "application/json", &buf); err == nil {
			resp.Body.Close()
		}
	}()
	<-wal.entered
	baseline := runtime.NumGoroutine()

	ctx, cancelAll := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(SearchRequest{Vector: d.History.Row(i), K: IntPtr(3), EF: IntPtr(30)})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/search", &buf)
			req.Header.Set("Content-Type", "application/json")
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	// 1 search admitted (capacity 2 minus the insert), 4 queued.
	waitForCond(t, "queue to fill", func() bool { return s.Admission.Stats().Queued == 4 })

	// Everyone hangs up at once.
	cancelAll()
	wg.Wait()
	waitForCond(t, "queue to empty after disconnects", func() bool {
		st := s.Admission.Stats()
		return st.Queued == 0 && st.TimedOut >= 4
	})

	wal.unblock()
	<-insertDone
	waitForCond(t, "admission to drain", func() bool { return s.Admission.Stats().InUse == 0 })

	// The process took no damage: fresh clients get full service.
	var sr SearchResponse
	if resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1), K: IntPtr(3), EF: IntPtr(30)}, &sr); resp.StatusCode != http.StatusOK || len(sr.Results) != 3 {
		t.Fatalf("search after mass disconnect: status %d results %d", resp.StatusCode, len(sr.Results))
	}
	waitForCond(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline+8
	})
}

// Inserts, deletes, and fixes are governed too: with capacity wedged,
// they queue within bounds and shed beyond them — no unguarded side door
// into the index.
func TestMutationsGoverned(t *testing.T) {
	wal := newBlockingWAL()
	ts, s, d := newTestServerWAL(t, wal)
	t.Cleanup(wal.unblock)
	s.Admission = admission.New(admission.Config{Capacity: 1, QueueDepth: 1, CostUnitEF: 100})
	client := ts.Client()

	insertDone := make(chan struct{})
	go func() {
		defer close(insertDone)
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(InsertRequest{Vector: d.TestOOD.Row(0)})
		if resp, err := client.Post(ts.URL+"/v1/insert", "application/json", &buf); err == nil {
			resp.Body.Close()
		}
	}()
	<-wal.entered

	// One follower fits in the queue...
	queuedDone := make(chan int, 1)
	go func() {
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(DeleteRequest{ID: 1})
		resp, err := client.Post(ts.URL+"/v1/delete", "application/json", &buf)
		if err != nil {
			queuedDone <- -1
			return
		}
		resp.Body.Close()
		queuedDone <- resp.StatusCode
	}()
	waitForCond(t, "delete to queue", func() bool { return s.Admission.Stats().Queued == 1 })

	// ...and the next mutation of any flavor is shed with the contract.
	for _, c := range []struct{ path, body string }{
		{"/v1/fix", `{}`},
		{"/v1/delete", `{"id":2}`},
		{"/v1/purge", `{"k":5,"ef":30}`},
	} {
		resp, err := client.Post(ts.URL+c.path, "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s while saturated: status %d, want 429", c.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: 429 without Retry-After", c.path)
		}
	}

	wal.unblock()
	<-insertDone
	if code := <-queuedDone; code != http.StatusOK {
		t.Fatalf("queued delete finished with %d", code)
	}
}

// Pressure-driven degradation: with the queue past its threshold, an
// expensive search is admitted at a clamped ef (reported in the
// response) instead of either running at full cost or being dropped.
func TestPressureClampsEF(t *testing.T) {
	wal := newBlockingWAL()
	ts, s, d := newTestServerWAL(t, wal)
	t.Cleanup(wal.unblock)
	s.Admission = admission.New(admission.Config{Capacity: 2, QueueDepth: 4, CostUnitEF: 100, PressureThreshold: 0.5})
	s.EFFloor = 16
	client := ts.Client()

	insertDone := make(chan struct{})
	go func() {
		defer close(insertDone)
		var buf bytes.Buffer
		json.NewEncoder(&buf).Encode(InsertRequest{Vector: d.TestOOD.Row(0)})
		if resp, err := client.Post(ts.URL+"/v1/insert", "application/json", &buf); err == nil {
			resp.Body.Close()
		}
	}()
	<-wal.entered

	// Push the queue past the 0.5 threshold with cancellable waiters: one
	// is admitted (capacity 2 minus the insert), three queue.
	ctx, cancelAll := context.WithCancel(context.Background())
	defer cancelAll()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			json.NewEncoder(&buf).Encode(SearchRequest{Vector: d.History.Row(i), K: IntPtr(3), EF: IntPtr(30)})
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/search", &buf)
			req.Header.Set("Content-Type", "application/json")
			if resp, err := client.Do(req); err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	waitForCond(t, "pressure past threshold", func() bool { return s.Admission.Pressure() >= 0.75 })

	// Under pressure 0.75 a big-ef search gets clamped twice at the
	// door: the admission budget first (ef 400 could never fit capacity
	// 2 honestly, so it shrinks to MaxEF = 200), then the pressure
	// policy: ef = 200 - 0.5*(200-16) = 108. The clamps also shrink its
	// cost, so it still fits the queue's last slot and survives.
	probeDone := make(chan SearchResponse, 1)
	go func() {
		var sr SearchResponse
		resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1), K: IntPtr(5), EF: IntPtr(400)}, &sr)
		if resp.StatusCode != http.StatusOK {
			sr.EFUsed = -resp.StatusCode
		}
		probeDone <- sr
	}()
	waitForCond(t, "probe to queue", func() bool { return s.Admission.Stats().Queued == 4 })

	// Clear the stall: the cancellable waiters hang up, the probe drains
	// through the queue and answers with its degraded quality on record.
	cancelAll()
	wg.Wait()
	wal.unblock()
	<-insertDone
	sr := <-probeDone
	if sr.EFUsed < 0 {
		t.Fatalf("pressured probe failed with status %d", -sr.EFUsed)
	}
	if !sr.Clamped || sr.EFUsed != 108 {
		t.Fatalf("pressured probe: clamped=%v efUsed=%d, want clamped ef 108", sr.Clamped, sr.EFUsed)
	}
	waitForCond(t, "admission to drain", func() bool { return s.Admission.Stats().InUse == 0 })
	if st := getStats(t, ts.URL); st.ClampedSearches != 1 {
		t.Fatalf("ClampedSearches = %d, want 1", st.ClampedSearches)
	}

	// Pressure gone: the pressure clamp releases, but the budget clamp
	// still holds ef to what the capacity can honestly admit.
	var full SearchResponse
	if resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1), K: IntPtr(5), EF: IntPtr(400)}, &full); resp.StatusCode != http.StatusOK {
		t.Fatalf("idle big-ef search: status %d", resp.StatusCode)
	}
	if !full.Clamped || full.EFUsed != 200 {
		t.Fatalf("idle search: clamped=%v efUsed=%d, want budget-clamped ef 200", full.Clamped, full.EFUsed)
	}
	// A request inside the budget runs unclamped now that pressure is gone.
	var inBudget SearchResponse
	if resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1), K: IntPtr(5), EF: IntPtr(150)}, &inBudget); resp.StatusCode != http.StatusOK {
		t.Fatalf("in-budget search: status %d", resp.StatusCode)
	}
	if inBudget.Clamped || inBudget.EFUsed != 150 {
		t.Fatalf("in-budget search clamped: %+v", inBudget)
	}
}

// TestOverloadStress hammers a small-capacity server with concurrent
// searches under -race and asserts the safety envelope: every response
// is 200 or 429, the queue never exceeds its bound, goroutines stay
// bounded by the offered load, and p99 latency stays within the server
// budget plus slack — overload costs quality and admission, never
// stability.
func TestOverloadStress(t *testing.T) {
	ts, s, d := newTestServerFull(t)
	s.Admission = admission.New(admission.Config{Capacity: 2, QueueDepth: 4, CostUnitEF: 30, PressureThreshold: 0.25})
	s.SearchTimeout = 250 * time.Millisecond
	s.EFFloor = 8
	client := ts.Client()

	baseline := runtime.NumGoroutine()
	const workers = 16
	const perWorker = 30
	lat := make([]time.Duration, 0, workers*perWorker)
	var latMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ef := 30 + (w%4)*60 // mix of cheap and expensive queries
				var buf bytes.Buffer
				json.NewEncoder(&buf).Encode(SearchRequest{
					Vector: d.History.Row((w*perWorker + i) % d.History.Rows()),
					K:      IntPtr(5), EF: IntPtr(ef),
				})
				start := time.Now()
				resp, err := client.Post(ts.URL+"/v1/search", "application/json", &buf)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				resp.Body.Close()
				elapsed := time.Since(start)
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					t.Errorf("worker %d: status %d", w, resp.StatusCode)
					return
				}
				latMu.Lock()
				lat = append(lat, elapsed)
				latMu.Unlock()
				if n := runtime.NumGoroutine(); n > baseline+6*workers {
					t.Errorf("goroutines unbounded under load: %d (baseline %d)", n, baseline)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	st := s.Admission.Stats()
	if st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("admission leaked state: %+v", st)
	}
	if st.MaxQueued > 4 {
		t.Fatalf("queue exceeded bound: %+v", st)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if p99 := lat[len(lat)*99/100]; p99 > s.SearchTimeout+2*time.Second {
		t.Fatalf("p99 latency %s blew through the budget", p99)
	}
	waitForCond(t, "goroutines to drain", func() bool {
		return runtime.NumGoroutine() <= baseline+8
	})
	// Coherence: everything offered was either admitted or refused.
	total := st.Admitted + st.Shed + st.TimedOut
	if total < workers*perWorker {
		t.Fatalf("admission accounting lost requests: %+v (offered %d)", st, workers*perWorker)
	}
}
