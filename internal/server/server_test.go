package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/hnsw"
	"ngfix/internal/vec"
)

func newTestServer(t *testing.T) (*httptest.Server, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(dataset.Config{
		Name: "srv", N: 500, NHist: 100, NTest: 30,
		Dim: 8, Clusters: 6, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 3,
	})
	h := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
	ix := core.New(h.Bottom(), core.Options{Rounds: []core.Round{{K: 15}}, LEx: 24})
	fixer := core.NewOnlineFixer(ix, core.OnlineConfig{BatchSize: 50, PrepEF: 80})
	ts := httptest.NewServer(New(fixer))
	t.Cleanup(ts.Close)
	return ts, d
}

func post(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSearchEndpoint(t *testing.T) {
	ts, d := newTestServer(t)
	var out SearchResponse
	resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(0), K: 5, EF: 30}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != 5 || out.NDC == 0 {
		t.Fatalf("response %+v", out)
	}
	for i := 1; i < len(out.Results); i++ {
		if out.Results[i].Dist < out.Results[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
	// Defaults apply when k/ef omitted.
	resp = post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1)}, &out)
	if resp.StatusCode != http.StatusOK || len(out.Results) != 10 {
		t.Fatalf("default k: status %d results %d", resp.StatusCode, len(out.Results))
	}
}

func TestSearchValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	// Wrong dim.
	resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: []float32{1, 2}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim status %d", resp.StatusCode)
	}
	// Missing vector.
	resp = post(t, ts.URL+"/v1/search", SearchRequest{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-vector status %d", resp.StatusCode)
	}
	// GET not allowed.
	getResp, err := http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", getResp.StatusCode)
	}
	// Unknown fields rejected.
	resp2, err := http.Post(ts.URL+"/v1/search", "application/json",
		bytes.NewReader([]byte(`{"vector":[1],"bogus":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field status %d", resp2.StatusCode)
	}
}

func TestInsertDeletePurgeFlow(t *testing.T) {
	ts, d := newTestServer(t)
	var ins InsertResponse
	v := make([]float32, 8)
	copy(v, d.TestOOD.Row(0))
	resp := post(t, ts.URL+"/v1/insert", InsertRequest{Vector: v}, &ins)
	if resp.StatusCode != http.StatusOK || ins.ID != 500 {
		t.Fatalf("insert: status %d id %d", resp.StatusCode, ins.ID)
	}
	// New point is findable.
	var sr SearchResponse
	post(t, ts.URL+"/v1/search", SearchRequest{Vector: v, K: 1, EF: 30}, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != 500 {
		t.Fatalf("inserted point not top-1: %+v", sr.Results)
	}
	// Delete it.
	var del DeleteResponse
	post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 500}, &del)
	if !del.Deleted {
		t.Fatal("delete failed")
	}
	post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 500}, &del)
	if del.Deleted {
		t.Fatal("double delete should report false")
	}
	resp = post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 9999}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range delete status %d", resp.StatusCode)
	}
	// Purge removes it for good.
	var pr PurgeResponse
	post(t, ts.URL+"/v1/purge", PurgeRequest{K: 10, EF: 50}, &pr)
	if pr.Purged != 1 {
		t.Fatalf("purged %d, want 1", pr.Purged)
	}
	// Deleted point no longer returned.
	post(t, ts.URL+"/v1/search", SearchRequest{Vector: v, K: 3, EF: 30}, &sr)
	for _, h := range sr.Results {
		if h.ID == 500 {
			t.Fatal("purged point returned")
		}
	}
}

func TestFixAndStatsEndpoints(t *testing.T) {
	ts, d := newTestServer(t)
	// Serve some queries to populate the fix buffer.
	for qi := 0; qi < 20; qi++ {
		var sr SearchResponse
		post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.History.Row(qi), K: 5, EF: 30}, &sr)
	}
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Vectors != 500 || st.PendingFix != 20 || st.Metric != "L2" {
		t.Fatalf("stats %+v", st)
	}
	var fr FixResponse
	post(t, ts.URL+"/v1/fix", struct{}{}, &fr)
	if fr.Queries != 20 {
		t.Fatalf("fixed %d, want 20", fr.Queries)
	}
	// Stats reflect the batch.
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	json.NewDecoder(resp2.Body).Decode(&st)
	if st.FixBatches != 1 || st.FixedQueries != 20 || st.PendingFix != 0 {
		t.Fatalf("post-fix stats %+v", st)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}
