package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/vec"
)

func newTestServer(t *testing.T) (*httptest.Server, *dataset.Dataset) {
	ts, _, d := newTestServerFull(t)
	return ts, d
}

// newTestServerFull also exposes the Server for tests that poke at
// readiness, the snapshot hook, or body limits. Like production startup,
// it marks the server ready once the (here: instant) index load is done.
func newTestServerFull(t *testing.T) (*httptest.Server, *Server, *dataset.Dataset) {
	return newTestServerWAL(t, nil)
}

// newTestServerWAL is newTestServerFull with an injectable durability
// sink, wired like production: the snapshot endpoint goes through the
// fixer so a successful snapshot clears durability degradation.
func newTestServerWAL(t *testing.T, wal core.WAL) (*httptest.Server, *Server, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(dataset.Config{
		Name: "srv", N: 500, NHist: 100, NTest: 30,
		Dim: 8, Clusters: 6, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 3,
	})
	h := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
	ix := core.New(h.Bottom(), core.Options{Rounds: []core.Round{{K: 15}}, LEx: 24})
	fixer := core.NewOnlineFixer(ix, core.OnlineConfig{BatchSize: 50, PrepEF: 80, WAL: wal})
	s := New(fixer)
	if wal != nil {
		s.SnapshotFunc = fixer.Snapshot
	}
	s.SetReady(true)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, d
}

func post(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSearchEndpoint(t *testing.T) {
	ts, d := newTestServer(t)
	var out SearchResponse
	resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(0), K: IntPtr(5), EF: IntPtr(30)}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != 5 || out.NDC == 0 {
		t.Fatalf("response %+v", out)
	}
	for i := 1; i < len(out.Results); i++ {
		if out.Results[i].Dist < out.Results[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
	// Defaults apply when k/ef omitted.
	resp = post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(1)}, &out)
	if resp.StatusCode != http.StatusOK || len(out.Results) != 10 {
		t.Fatalf("default k: status %d results %d", resp.StatusCode, len(out.Results))
	}
}

func TestSearchValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	// Wrong dim.
	resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: []float32{1, 2}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim status %d", resp.StatusCode)
	}
	// Missing vector.
	resp = post(t, ts.URL+"/v1/search", SearchRequest{}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing-vector status %d", resp.StatusCode)
	}
	// GET not allowed.
	getResp, err := http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", getResp.StatusCode)
	}
	// Unknown fields rejected.
	resp2, err := http.Post(ts.URL+"/v1/search", "application/json",
		bytes.NewReader([]byte(`{"vector":[1],"bogus":true}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field status %d", resp2.StatusCode)
	}
}

// Strict k/ef validation: explicit nonsense is a clear 400 at the edge,
// never a silent clamp deep in the search stack. Omitted values still
// take the server defaults (TestSearchEndpoint covers that).
func TestSearchParamValidation(t *testing.T) {
	ts, d := newTestServer(t) // 500-vector index
	v := d.TestOOD.Row(0)
	bad := []struct {
		name string
		req  SearchRequest
		want string
	}{
		{"k zero", SearchRequest{Vector: v, K: IntPtr(0)}, "k must be at least 1"},
		{"k negative", SearchRequest{Vector: v, K: IntPtr(-3)}, "k must be at least 1"},
		{"ef zero", SearchRequest{Vector: v, EF: IntPtr(0)}, "ef must be at least 1"},
		{"ef below k", SearchRequest{Vector: v, K: IntPtr(20), EF: IntPtr(10)}, "must be at least k"},
		{"ef beyond graph", SearchRequest{Vector: v, K: IntPtr(5), EF: IntPtr(501)}, "exceeds the graph size"},
	}
	for _, c := range bad {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(c.req); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if err != nil || !strings.Contains(body["error"], c.want) {
			t.Fatalf("%s: error %q does not mention %q", c.name, body["error"], c.want)
		}
	}
	// The largest legal explicit ef (= graph size) still works.
	var sr SearchResponse
	resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: v, K: IntPtr(5), EF: IntPtr(500)}, &sr)
	if resp.StatusCode != http.StatusOK || len(sr.Results) != 5 || sr.EFUsed != 500 {
		t.Fatalf("ef=graph-size search: status %d results %d efUsed %d", resp.StatusCode, len(sr.Results), sr.EFUsed)
	}
}

func TestInsertDeletePurgeFlow(t *testing.T) {
	ts, d := newTestServer(t)
	var ins InsertResponse
	v := make([]float32, 8)
	copy(v, d.TestOOD.Row(0))
	resp := post(t, ts.URL+"/v1/insert", InsertRequest{Vector: v}, &ins)
	if resp.StatusCode != http.StatusOK || ins.ID != 500 {
		t.Fatalf("insert: status %d id %d", resp.StatusCode, ins.ID)
	}
	// New point is findable.
	var sr SearchResponse
	post(t, ts.URL+"/v1/search", SearchRequest{Vector: v, K: IntPtr(1), EF: IntPtr(30)}, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != 500 {
		t.Fatalf("inserted point not top-1: %+v", sr.Results)
	}
	// Delete it.
	var del DeleteResponse
	post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 500}, &del)
	if !del.Deleted {
		t.Fatal("delete failed")
	}
	post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 500}, &del)
	if del.Deleted {
		t.Fatal("double delete should report false")
	}
	resp = post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 9999}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range delete status %d", resp.StatusCode)
	}
	// Purge removes it for good.
	var pr PurgeResponse
	post(t, ts.URL+"/v1/purge", PurgeRequest{K: 10, EF: 50}, &pr)
	if pr.Purged != 1 {
		t.Fatalf("purged %d, want 1", pr.Purged)
	}
	// Deleted point no longer returned.
	post(t, ts.URL+"/v1/search", SearchRequest{Vector: v, K: IntPtr(3), EF: IntPtr(30)}, &sr)
	for _, h := range sr.Results {
		if h.ID == 500 {
			t.Fatal("purged point returned")
		}
	}
}

func TestFixAndStatsEndpoints(t *testing.T) {
	ts, d := newTestServer(t)
	// Serve some queries to populate the fix buffer.
	for qi := 0; qi < 20; qi++ {
		var sr SearchResponse
		post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.History.Row(qi), K: IntPtr(5), EF: IntPtr(30)}, &sr)
	}
	var st StatsResponse
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Vectors != 500 || st.PendingFix != 20 || st.Metric != "L2" {
		t.Fatalf("stats %+v", st)
	}
	var fr FixResponse
	post(t, ts.URL+"/v1/fix", struct{}{}, &fr)
	if fr.Queries != 20 {
		t.Fatalf("fixed %d, want 20", fr.Queries)
	}
	// Stats reflect the batch.
	resp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	json.NewDecoder(resp2.Body).Decode(&st)
	if st.FixBatches != 1 || st.FixedQueries != 20 || st.PendingFix != 0 {
		t.Fatalf("post-fix stats %+v", st)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

// syncBuffer is a goroutine-safe log sink: handlers log from the HTTP
// server's goroutines while the test reads from its own.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func doMethod(t *testing.T, method, url string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestMethodEnforcement(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/v1/stats", http.MethodGet},
		{http.MethodGet, "/v1/fix", http.MethodPost},
		{http.MethodPost, "/healthz", http.MethodGet},
		{http.MethodDelete, "/readyz", http.MethodGet},
		{http.MethodGet, "/v1/snapshot", http.MethodPost},
	}
	for _, c := range cases {
		resp := doMethod(t, c.method, ts.URL+c.path)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s: status %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != c.allow {
			t.Fatalf("%s %s: Allow %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}

func TestReadyzLifecycle(t *testing.T) {
	ts, s, _ := newTestServerFull(t)
	s.SetReady(false) // back to the pre-load state

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before ready: %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before ready: %d, want 200 (liveness != readiness)", code)
	}
	s.SetReady(true)
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after ready: %d, want 200", code)
	}
	s.StartDrain()
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	// Draining still serves stragglers.
	if code := get("/v1/stats"); code != http.StatusOK {
		t.Fatalf("stats while draining: %d, want 200", code)
	}
}

func TestPanicRecovery(t *testing.T) {
	ts, s, d := newTestServerFull(t)
	logs := &syncBuffer{}
	s.Logger = log.New(logs, "", 0)
	s.SnapshotFunc = func() error { panic("disk fell off") }

	resp := post(t, ts.URL+"/v1/snapshot", struct{}{}, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(logs.String(), "disk fell off") {
		t.Fatal("panic not logged")
	}
	// The process survived: normal serving continues.
	var sr SearchResponse
	resp = post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(0), K: IntPtr(3), EF: IntPtr(30)}, &sr)
	if resp.StatusCode != http.StatusOK || len(sr.Results) != 3 {
		t.Fatalf("serving broken after panic: status %d, %d results", resp.StatusCode, len(sr.Results))
	}
}

func TestRequestBodyLimit(t *testing.T) {
	ts, s, _ := newTestServerFull(t)
	s.MaxBodyBytes = 128
	big := make([]float32, 1024)
	resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: big}, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	// Small bodies still fit.
	resp = post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 1}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after limit: status %d", resp.StatusCode)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	ts, s, _ := newTestServerFull(t)
	resp := post(t, ts.URL+"/v1/snapshot", struct{}{}, nil)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("snapshot without persistence: status %d, want 501", resp.StatusCode)
	}
	calls := 0
	s.SnapshotFunc = func() error { calls++; return nil }
	var sn SnapshotResponse
	resp = post(t, ts.URL+"/v1/snapshot", struct{}{}, &sn)
	if resp.StatusCode != http.StatusOK || !sn.OK || calls != 1 {
		t.Fatalf("snapshot: status %d ok=%v calls=%d", resp.StatusCode, sn.OK, calls)
	}
	s.SnapshotFunc = func() error { calls++; return errTestSnapshot }
	resp = post(t, ts.URL+"/v1/snapshot", struct{}{}, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing snapshot: status %d, want 500", resp.StatusCode)
	}
}

var errTestSnapshot = errors.New("no space left on device")

// TestConcurrentServing hammers the server from many goroutines — search,
// insert, delete, fix, stats — and asserts the counters clients observe
// are coherent: fixed-query and batch totals never go backwards and the
// vector count never shrinks. Run with -race.
func TestConcurrentServing(t *testing.T) {
	ts, _, d := newTestServerFull(t)
	client := ts.Client()

	postJSON := func(path string, body interface{}, out interface{}) (int, error) {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
		resp, err := client.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if out != nil && resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return resp.StatusCode, err
			}
		}
		return resp.StatusCode, nil
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Searchers.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				var sr SearchResponse
				q := d.History.Row((i*3 + w) % d.History.Rows())
				code, err := postJSON("/v1/search", SearchRequest{Vector: q, K: IntPtr(5), EF: IntPtr(30)}, &sr)
				if err != nil || code != http.StatusOK || len(sr.Results) == 0 {
					fail(fmt.Errorf("search worker %d: code %d err %v results %d", w, code, err, len(sr.Results)))
					return
				}
			}
		}(w)
	}
	// Mutator: inserts then deletes its own vectors.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			var ins InsertResponse
			code, err := postJSON("/v1/insert", InsertRequest{Vector: d.TestOOD.Row(i)}, &ins)
			if err != nil || code != http.StatusOK {
				fail(fmt.Errorf("insert %d: code %d err %v", i, code, err))
				return
			}
			if code, err := postJSON("/v1/delete", DeleteRequest{ID: ins.ID}, nil); err != nil || code != http.StatusOK {
				fail(fmt.Errorf("delete %d: code %d err %v", ins.ID, code, err))
				return
			}
		}
	}()
	// Fixer: drains the recorded-query buffer while searches stream in.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if code, err := postJSON("/v1/fix", struct{}{}, nil); err != nil || code != http.StatusOK {
				fail(fmt.Errorf("fix %d: code %d err %v", i, code, err))
				return
			}
		}
	}()
	// Stats poller: the monotonicity observer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev StatsResponse
		for i := 0; i < 30; i++ {
			resp, err := client.Get(ts.URL + "/v1/stats")
			if err != nil {
				fail(fmt.Errorf("stats %d: %v", i, err))
				return
			}
			var st StatsResponse
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				fail(fmt.Errorf("stats decode %d: %v", i, err))
				return
			}
			if st.FixedQueries < prev.FixedQueries || st.FixBatches < prev.FixBatches {
				fail(fmt.Errorf("fix counters went backwards: %+v then %+v", prev, st))
				return
			}
			if st.Vectors < prev.Vectors {
				fail(fmt.Errorf("vector count shrank: %d then %d", prev.Vectors, st.Vectors))
				return
			}
			prev = st
		}
	}()

	wg.Wait()
	close(errs)
	if err, ok := <-errs; ok {
		t.Fatal(err)
	}
}

// flakyWAL is a durability sink with a kill switch: while broken, every
// append and snapshot fails.
type flakyWAL struct {
	mu     sync.Mutex
	broken bool
	snaps  int
}

func (w *flakyWAL) setBroken(b bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.broken = b
}

func (w *flakyWAL) err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return errors.New("journal disk unavailable")
	}
	return nil
}

func (w *flakyWAL) LogInsert(v []float32) error             { return w.err() }
func (w *flakyWAL) LogDelete(id uint32) error               { return w.err() }
func (w *flakyWAL) LogFixEdges(u []graph.ExtraUpdate) error { return w.err() }
func (w *flakyWAL) Snapshot(g *graph.Graph) error {
	if err := w.err(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.snaps++
	return nil
}

// A WAL failure must not be a silent stats footnote: the mutation that
// could not be journaled is answered 5xx instead of an ack, /readyz turns
// 503 so balancers stop routing writes here, and a successful snapshot —
// which captures the full in-memory state — restores both.
func TestDurabilityDegradationSurfaced(t *testing.T) {
	wal := &flakyWAL{}
	ts, _, d := newTestServerWAL(t, wal)
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Healthy: inserts ack, readyz routes.
	v := d.TestOOD.Row(0)
	var ins InsertResponse
	if resp := post(t, ts.URL+"/v1/insert", InsertRequest{Vector: v}, &ins); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy insert: status %d", resp.StatusCode)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("healthy readyz: %d", code)
	}

	wal.setBroken(true)
	if resp := post(t, ts.URL+"/v1/insert", InsertRequest{Vector: v}, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unjournaled insert: status %d, want 500", resp.StatusCode)
	}
	if resp := post(t, ts.URL+"/v1/delete", DeleteRequest{ID: ins.ID}, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("unjournaled delete: status %d, want 500", resp.StatusCode)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz: %d, want 503", code)
	}
	// Searches keep serving — degradation sheds routing, not reads.
	var sr SearchResponse
	if resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: v, K: IntPtr(3), EF: IntPtr(30)}, &sr); resp.StatusCode != http.StatusOK || len(sr.Results) == 0 {
		t.Fatalf("search while degraded: status %d, %d results", resp.StatusCode, len(sr.Results))
	}
	// The incident is on the stats.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.WALErrors < 2 || st.LastWALError == "" {
		t.Fatalf("stats while degraded: %+v", st)
	}
	// Snapshot also fails while the disk is gone.
	if resp := post(t, ts.URL+"/v1/snapshot", struct{}{}, nil); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("snapshot while broken: status %d, want 500", resp.StatusCode)
	}

	// Disk returns: one successful snapshot seals the in-memory state and
	// clears the condition.
	wal.setBroken(false)
	if resp := post(t, ts.URL+"/v1/snapshot", struct{}{}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery snapshot: status %d", resp.StatusCode)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d, want 200", code)
	}
	if resp := post(t, ts.URL+"/v1/insert", InsertRequest{Vector: v}, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after recovery: status %d", resp.StatusCode)
	}
}
