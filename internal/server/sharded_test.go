package server

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"ngfix/internal/admission"
	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/persist"
	"ngfix/internal/shard"
	"ngfix/internal/vec"
)

var errShardDisk = errors.New("injected disk failure")

// newShardedTestServer wires a 2-shard server the way production does:
// per-shard stores under shard-<i>/, per-shard registries carrying a
// shard="<i>" const label, one admission controller, merged /metrics.
func newShardedTestServer(t *testing.T) (*httptest.Server, *Server, *shard.Group, *dataset.Dataset) {
	t.Helper()
	d := dataset.Generate(dataset.Config{
		Name: "srv2", N: 500, NHist: 100, NTest: 30,
		Dim: 8, Clusters: 6, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 3,
	})
	const n = 2
	stores, err := persist.OpenSharded(t.TempDir(), n, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := shard.Partition(d.Base, n)
	fixers := make([]*core.OnlineFixer, n)
	shardRegs := make([]*obs.Registry, n)
	for i, p := range parts {
		shardRegs[i] = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		stores[i].RegisterMetrics(shardRegs[i])
		h := hnsw.Build(p, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
		ix := core.New(h.Bottom(), core.Options{Rounds: []core.Round{{K: 15}}, LEx: 24})
		fixers[i] = core.NewOnlineFixer(ix, core.OnlineConfig{
			BatchSize: 50, PrepEF: 80, WAL: stores[i], Metrics: shardRegs[i],
		})
	}
	g, err := shard.NewGroup(fixers)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s := NewSharded(g)
	s.SnapshotFunc = g.Snapshot
	s.Admission = admission.New(admission.Config{Capacity: 8})
	reg := obs.NewRegistry()
	s.EnableMetrics(reg, shardRegs...)
	s.SetReady(true)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, g, d
}

// TestShardedServer is the HTTP layer's sharded integration test: the
// same API surface as the single-fixer server, but searches gather
// across shards, stats break down per shard, and every core/persist
// family on /metrics carries a shard label.
func TestShardedServer(t *testing.T) {
	ts, _, g, d := newShardedTestServer(t)

	var sr SearchResponse
	if resp := post(t, ts.URL+"/v1/search", SearchRequest{Vector: d.TestOOD.Row(0), K: IntPtr(5), EF: IntPtr(40)}, &sr); resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if len(sr.Results) != 5 {
		t.Fatalf("search returned %d results", len(sr.Results))
	}

	// Inserts land on alternating shards and ack with global ids that
	// continue the dense sequence.
	start := g.Len()
	for i := 0; i < 2; i++ {
		var ins InsertResponse
		if resp := post(t, ts.URL+"/v1/insert", InsertRequest{Vector: d.TestOOD.Row(i)}, &ins); resp.StatusCode != http.StatusOK {
			t.Fatalf("insert status %d", resp.StatusCode)
		}
		if int(ins.ID) != start+i {
			t.Fatalf("insert id %d, want %d", ins.ID, start+i)
		}
	}
	var del DeleteResponse
	if resp := post(t, ts.URL+"/v1/delete", DeleteRequest{ID: uint32(start)}, &del); resp.StatusCode != http.StatusOK || !del.Deleted {
		t.Fatalf("delete: status %d deleted %v", resp.StatusCode, del.Deleted)
	}
	if resp := post(t, ts.URL+"/v1/delete", DeleteRequest{ID: 1 << 30}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-id delete status %d, want 404", resp.StatusCode)
	}
	var fix FixResponse
	if resp := post(t, ts.URL+"/v1/fix", struct{}{}, &fix); resp.StatusCode != http.StatusOK {
		t.Fatalf("fix status %d", resp.StatusCode)
	}
	if fix.Queries != 2 { // both shards recorded the one search
		t.Fatalf("fix consumed %d queries, want 2", fix.Queries)
	}

	// Stats: aggregate plus per-shard breakdown that sums to it.
	st := getStats(t, ts.URL)
	if st.Shards != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats shards=%d perShard=%d", st.Shards, len(st.PerShard))
	}
	sumVec, sumLive := 0, 0
	for i, p := range st.PerShard {
		if p.Shard != i {
			t.Fatalf("perShard[%d].Shard = %d", i, p.Shard)
		}
		sumVec += p.Vectors
		sumLive += p.Live
	}
	if sumVec != st.Vectors || sumLive != st.Live {
		t.Fatalf("per-shard sums %d/%d, aggregate %d/%d", sumVec, sumLive, st.Vectors, st.Live)
	}

	// Metrics: one valid merged exposition; fixer and store families
	// appear once per shard under distinct shard labels; admission is
	// shard="all"; HTTP-layer families stay unlabeled.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("merged exposition invalid: %v\n%s", err, body)
	}
	for _, key := range []string{
		`ngfix_fix_batches_total{shard="0"}`,
		`ngfix_fix_batches_total{shard="1"}`,
		`ngfix_vectors{shard="0"}`,
		`ngfix_vectors{shard="1"}`,
		`ngfix_wal_snapshot_seconds_count{shard="0"}`,
		`ngfix_wal_snapshot_seconds_count{shard="1"}`,
		`ngfix_admission_admitted_total{shard="all"}`,
	} {
		if _, ok := samples[key]; !ok {
			t.Errorf("metrics missing %s", key)
		}
	}
	if _, ok := samples[`ngfix_search_duration_seconds_count{outcome="ok"}`]; !ok {
		t.Error("HTTP-layer search duration family missing")
	}
	if strings.Count(string(body), "# TYPE ngfix_fix_batches_total ") != 1 {
		t.Error("merged exposition repeats the TYPE line for a cross-shard family")
	}
}

// faultyWAL fails every append and snapshot — the degraded-shard seam.
type faultyWAL struct{ err error }

func (w faultyWAL) LogInsert(v []float32) error             { return w.err }
func (w faultyWAL) LogDelete(id uint32) error               { return w.err }
func (w faultyWAL) LogFixEdges(u []graph.ExtraUpdate) error { return w.err }
func (w faultyWAL) Snapshot(g *graph.Graph) error           { return w.err }

// TestShardedReadyzNamesDegradedShard pins per-shard readiness: when
// one shard's durability fails, /readyz turns 503 and says which shard
// — the others' health does not mask it, and an operator reading the
// probe knows where to look.
func TestShardedReadyzNamesDegradedShard(t *testing.T) {
	d := dataset.Generate(dataset.Config{
		Name: "rdz", N: 200, NHist: 20, NTest: 5,
		Dim: 8, Clusters: 4, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 3,
	})
	parts := shard.Partition(d.Base, 2)
	fixers := make([]*core.OnlineFixer, 2)
	for i, p := range parts {
		cfg := core.OnlineConfig{BatchSize: 50, PrepEF: 60}
		if i == 1 {
			cfg.WAL = faultyWAL{err: errShardDisk}
		}
		h := hnsw.Build(p, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
		ix := core.New(h.Bottom(), core.Options{Rounds: []core.Round{{K: 15}}, LEx: 24})
		fixers[i] = core.NewOnlineFixer(ix, cfg)
	}
	g, err := shard.NewGroup(fixers)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSharded(g)
	s.SetReady(true)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("readyz before degradation: %d", resp.StatusCode)
		}
	}

	// Trip shard 1's durability with a routed mutation (the 500 marks
	// the at-risk write); shard 0 stays healthy.
	if changed, err := g.Fixer(1).DeleteChecked(0); err == nil || !changed {
		t.Fatalf("shard-1 delete: changed=%v err=%v, want journal failure", changed, err)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with degraded shard: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "shard(s) [1]") {
		t.Fatalf("readyz does not name the degraded shard: %s", body)
	}
}
