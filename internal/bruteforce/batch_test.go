package bruteforce

import (
	"math/rand"
	"testing"

	"ngfix/internal/minheap"
	"ngfix/internal/vec"
)

// referenceKNN is the seed implementation: one metric dispatch and one
// distance evaluation per row. The chunked batch scan must match it
// exactly — same kernel on the same pairs, same admission order.
func referenceKNN(base *vec.Matrix, metric vec.Metric, q []float32, k int) []Neighbor {
	h := minheap.NewBounded(k)
	for i := 0; i < base.Rows(); i++ {
		d := metric.Distance(q, base.Row(i))
		if h.WouldAccept(d) {
			h.Push(minheap.Item{ID: uint32(i), Dist: d})
		}
	}
	items := h.SortedAscending()
	out := make([]Neighbor, len(items))
	for i, it := range items {
		out[i] = Neighbor{ID: it.ID, Dist: it.Dist}
	}
	return out
}

func TestKNNBatchedMatchesReference(t *testing.T) {
	arms := []bool{false}
	if vec.SIMDAvailable() {
		arms = append(arms, true)
	}
	defer vec.SetSIMD(true)
	rng := rand.New(rand.NewSource(11))
	for _, simd := range arms {
		vec.SetSIMD(simd)
		// Row counts straddle the chunk boundary on purpose.
		for _, n := range []int{1, 5, 255, 256, 257, 1000} {
			m := vec.NewMatrix(n, 9)
			for i := 0; i < n; i++ {
				r := m.Row(i)
				for j := range r {
					r[j] = rng.Float32()*2 - 1
				}
			}
			q := make([]float32, 9)
			for j := range q {
				q[j] = rng.Float32()*2 - 1
			}
			for _, met := range []vec.Metric{vec.L2, vec.InnerProduct, vec.Cosine} {
				got := KNN(m, met, q, 10, nil)
				want := referenceKNN(m, met, q, 10)
				if len(got) != len(want) {
					t.Fatalf("simd=%v n=%d %s: %d results, want %d", simd, n, met, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("simd=%v n=%d %s result %d: %+v != %+v", simd, n, met, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestKNNSkipPredicateUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := vec.NewMatrix(300, 6)
	for i := 0; i < 300; i++ {
		r := m.Row(i)
		for j := range r {
			r[j] = rng.Float32()
		}
	}
	q := m.Row(0)
	skip := func(id uint32) bool { return id%3 == 0 }
	got := KNN(m, vec.L2, q, 7, skip)
	for _, nb := range got {
		if skip(nb.ID) {
			t.Fatalf("skipped id %d in results", nb.ID)
		}
	}
	if len(got) != 7 {
		t.Fatalf("got %d results, want 7", len(got))
	}
}
