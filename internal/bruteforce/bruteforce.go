// Package bruteforce computes exact k-nearest-neighbor ground truth by
// linear scan, parallelized across queries. The paper's preprocessing step
// (§5.1) needs the exact NN of every historical query; this package is
// that "exact" path, while the approximate path reuses a graph index.
package bruteforce

import (
	"runtime"
	"sync"

	"ngfix/internal/minheap"
	"ngfix/internal/vec"
)

// Neighbor is one ground-truth hit.
type Neighbor struct {
	ID   uint32
	Dist float32
}

// scanChunk is how many contiguous rows one batch kernel call scores.
// Large enough to amortize dispatch, small enough that the distance
// buffer stays in L1.
const scanChunk = 256

// KNN returns the k nearest rows of base to q in ascending distance.
// Deleted ids can be excluded by passing a non-nil skip predicate.
//
// Without a skip predicate the scan runs in chunks through the batched
// SIMD kernel (the rows are contiguous, so each chunk is one linear
// streaming pass); with one, it falls back to scoring row by row so
// skipped rows cost nothing.
func KNN(base *vec.Matrix, metric vec.Metric, q []float32, k int, skip func(uint32) bool) []Neighbor {
	h := minheap.NewBounded(k)
	n := base.Rows()
	qd := vec.NewQueryDistancer(metric, q, nil)
	if skip == nil {
		var buf [scanChunk]float32
		for lo := 0; lo < n; lo += scanChunk {
			hi := lo + scanChunk
			if hi > n {
				hi = n
			}
			dists := buf[:hi-lo]
			qd.RowDistancesRange(base, lo, hi, dists)
			for i, d := range dists {
				if h.WouldAccept(d) {
					h.Push(minheap.Item{ID: uint32(lo + i), Dist: d})
				}
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if skip(uint32(i)) {
				continue
			}
			d := qd.RowDistance(base, uint32(i))
			if h.WouldAccept(d) {
				h.Push(minheap.Item{ID: uint32(i), Dist: d})
			}
		}
	}
	items := h.SortedAscending()
	out := make([]Neighbor, len(items))
	for i, it := range items {
		out[i] = Neighbor{ID: it.ID, Dist: it.Dist}
	}
	return out
}

// AllKNN computes ground truth for every query row, in parallel.
// The result is indexed by query row; each entry is ascending by distance.
func AllKNN(base, queries *vec.Matrix, metric vec.Metric, k int) [][]Neighbor {
	nq := queries.Rows()
	out := make([][]Neighbor, nq)
	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (nq + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > nq {
			hi = nq
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = KNN(base, metric, queries.Row(i), k, nil)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// IDs extracts just the vertex ids from a neighbor list.
func IDs(ns []Neighbor) []uint32 {
	ids := make([]uint32, len(ns))
	for i, n := range ns {
		ids[i] = n.ID
	}
	return ids
}
