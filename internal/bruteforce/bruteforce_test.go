package bruteforce

import (
	"math/rand"
	"sort"
	"testing"

	"ngfix/internal/vec"
)

func TestKNNLine(t *testing.T) {
	m := vec.NewMatrix(10, 1)
	for i := 0; i < 10; i++ {
		m.Row(i)[0] = float32(i)
	}
	got := KNN(m, vec.L2, []float32{4.2}, 3, nil)
	if len(got) != 3 || got[0].ID != 4 || got[1].ID != 5 || got[2].ID != 3 {
		t.Fatalf("KNN = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("not ascending")
		}
	}
}

func TestKNNSkip(t *testing.T) {
	m := vec.NewMatrix(5, 1)
	for i := 0; i < 5; i++ {
		m.Row(i)[0] = float32(i)
	}
	got := KNN(m, vec.L2, []float32{2}, 2, func(id uint32) bool { return id == 2 })
	for _, n := range got {
		if n.ID == 2 {
			t.Fatal("skipped id returned")
		}
	}
	if len(got) != 2 {
		t.Fatalf("got %d results", len(got))
	}
}

func TestKNNSmallerThanK(t *testing.T) {
	m := vec.NewMatrix(2, 1)
	m.Row(1)[0] = 1
	got := KNN(m, vec.L2, []float32{0}, 5, nil)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
}

func TestAllKNNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := vec.NewMatrix(200, 6)
	for i := 0; i < 200; i++ {
		for j := 0; j < 6; j++ {
			base.Row(i)[j] = float32(rng.NormFloat64())
		}
	}
	queries := vec.NewMatrix(17, 6)
	for i := 0; i < 17; i++ {
		for j := 0; j < 6; j++ {
			queries.Row(i)[j] = float32(rng.NormFloat64())
		}
	}
	all := AllKNN(base, queries, vec.L2, 5)
	if len(all) != 17 {
		t.Fatalf("AllKNN returned %d rows", len(all))
	}
	for qi := 0; qi < 17; qi++ {
		// Independent check via full sort.
		type pair struct {
			id uint32
			d  float32
		}
		var ps []pair
		for i := 0; i < 200; i++ {
			ps = append(ps, pair{uint32(i), vec.L2Squared(queries.Row(qi), base.Row(i))})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].d < ps[j].d })
		for x := 0; x < 5; x++ {
			if all[qi][x].ID != ps[x].id {
				t.Fatalf("query %d rank %d: %d vs %d", qi, x, all[qi][x].ID, ps[x].id)
			}
		}
	}
	ids := IDs(all[0])
	if len(ids) != 5 || ids[0] != all[0][0].ID {
		t.Fatal("IDs extraction broken")
	}
}

func TestAllKNNInnerProduct(t *testing.T) {
	base := vec.MatrixFromRows([][]float32{{1, 0}, {0, 1}, {2, 2}})
	q := vec.MatrixFromRows([][]float32{{1, 1}})
	got := AllKNN(base, q, vec.InnerProduct, 1)
	// max inner product with (1,1) is row 2 (dot=4).
	if got[0][0].ID != 2 {
		t.Fatalf("MIPS top1 = %d, want 2", got[0][0].ID)
	}
}
