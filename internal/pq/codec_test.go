package pq

import (
	"bytes"
	"testing"
)

func TestCodecRoundTripBitIdentical(t *testing.T) {
	m := randomMatrix(31, 400, 24)
	q, err := Train(m, Config{M: 6, KS: 50, Iters: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQuantizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config() != q.Config() || got.Dim() != q.Dim() || got.Rows() != q.Rows() {
		t.Fatalf("header mismatch: %+v dim=%d rows=%d vs %+v dim=%d rows=%d",
			got.Config(), got.Dim(), got.Rows(), q.Config(), q.Dim(), q.Rows())
	}
	if !bytes.Equal(got.codes, q.codes) {
		t.Fatal("codes not bit-identical after round trip")
	}
	for i := range q.centroids {
		a, b := q.centroids[i].Data(), got.centroids[i].Data()
		if len(a) != len(b) {
			t.Fatalf("centroid table %d size mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("centroid table %d entry %d differs: %v vs %v", i, j, a[j], b[j])
			}
		}
	}

	// The replay-don't-re-encode property: encoding a new row with the
	// recovered codebooks yields exactly the bytes the original would.
	extra := randomMatrix(32, 8, 24)
	for i := 0; i < extra.Rows(); i++ {
		q.AppendRow(extra.Row(i))
		got.AppendRow(extra.Row(i))
		if !bytes.Equal(q.Code(q.Rows()-1), got.Code(got.Rows()-1)) {
			t.Fatalf("re-encoded row %d differs between original and recovered quantizer", i)
		}
	}
}

func TestReadQuantizerRejectsCorruption(t *testing.T) {
	m := randomMatrix(33, 50, 8)
	q, err := Train(m, Config{M: 4, KS: 16, Iters: 3, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// Truncations anywhere must error, never panic or succeed partially.
	for _, cut := range []int{0, 10, 39, 41, len(full) / 2, len(full) - 1} {
		if _, err := ReadQuantizer(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), full...)
	bad[0] ^= 0xFF
	if _, err := ReadQuantizer(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}
