//go:build linux || darwin || freebsd || netbsd || openbsd

package pq

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"

	"ngfix/internal/vec"
)

// mapTier mmaps the tier file read-only and adopts the float32 payload in
// place: zero copies, zero heap residency — the kernel pages rerank rows
// in on demand and evicts them under memory pressure.
func mapTier(f *os.File, dim, rows int) (*vec.Matrix, []byte, error) {
	size := tierHeaderSize + rows*dim*4
	if rows == 0 {
		return vec.NewMatrix(0, dim), nil, nil
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("pq: mmap tier: %w", err)
	}
	payload := raw[tierHeaderSize:size]
	floats := unsafe.Slice((*float32)(unsafe.Pointer(&payload[0])), rows*dim)
	return vec.WrapMatrix(floats, dim), raw, nil
}

func unmapTier(raw []byte) error {
	if raw == nil {
		return nil
	}
	return syscall.Munmap(raw)
}
