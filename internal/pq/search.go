package pq

import (
	"ngfix/internal/graph"
	"ngfix/internal/minheap"
)

// GraphSearcher runs beam search over a graph index scoring candidates
// with ADC lookups instead of full-precision distances, then re-ranks the
// final candidates exactly. One full-precision distance is paid per
// re-ranked candidate instead of per visited vertex.
type GraphSearcher struct {
	g       *graph.Graph
	q       *Quantizer
	visited *minheap.Visited
	cand    *minheap.Min
	results *minheap.Bounded
	// Rerank is how many ADC-best candidates get exact re-ranking
	// (default 4·k at search time when zero).
	Rerank int
}

// NewGraphSearcher pairs a graph with a quantizer trained on the same
// rows (ids must correspond).
func NewGraphSearcher(g *graph.Graph, q *Quantizer) *GraphSearcher {
	if q.Rows() != g.Len() {
		panic("pq: quantizer rows != graph size")
	}
	return &GraphSearcher{
		g:       g,
		q:       q,
		visited: minheap.NewVisited(g.Len()),
		cand:    minheap.NewMin(256),
		results: minheap.NewBounded(16),
	}
}

// Search returns the top-k for the query using ADC-guided beam search
// with search list ef and exact re-ranking. Stats.NDC counts only
// full-precision distance evaluations (the re-rank), mirroring how
// PQ+graph systems report their savings.
func (s *GraphSearcher) Search(query []float32, k, ef int) ([]graph.Result, graph.Stats) {
	g := s.g
	if g.Len() == 0 {
		return nil, graph.Stats{}
	}
	if ef < k {
		ef = k
	}
	rerank := s.Rerank
	if rerank <= 0 {
		rerank = 4 * k
	}
	if rerank < ef {
		rerank = ef
	}
	table := s.q.BuildTable(query)

	s.visited.Grow(g.Len())
	s.visited.Reset()
	s.cand.Reset()
	s.results.Reset(rerank)

	var st graph.Stats
	entry := g.EntryPoint
	s.visited.Visit(entry)
	ed := s.q.ADC(table, int(entry))
	s.cand.Push(minheap.Item{ID: entry, Dist: ed})
	if !g.IsDeleted(entry) {
		s.results.Push(minheap.Item{ID: entry, Dist: ed})
	}
	for s.cand.Len() > 0 {
		cur := s.cand.Pop()
		if worst, ok := s.results.MaxDist(); ok && s.results.Full() && cur.Dist > worst {
			break
		}
		st.Hops++
		expand := func(v uint32) {
			if s.visited.Visit(v) {
				return
			}
			d := s.q.ADC(table, int(v))
			if s.results.WouldAccept(d) {
				s.cand.Push(minheap.Item{ID: v, Dist: d})
				if !g.IsDeleted(v) {
					s.results.Push(minheap.Item{ID: v, Dist: d})
				}
			}
		}
		for _, v := range g.BaseNeighbors(cur.ID) {
			expand(v)
		}
		for _, e := range g.ExtraNeighbors(cur.ID) {
			expand(e.To)
		}
	}

	// Exact re-rank of the ADC-best candidates.
	items := s.results.SortedAscending()
	reranked := minheap.NewBounded(k)
	for _, it := range items {
		d := g.Metric.Distance(query, g.Vectors.Row(int(it.ID)))
		st.NDC++
		if reranked.WouldAccept(d) {
			reranked.Push(minheap.Item{ID: it.ID, Dist: d})
		}
	}
	final := reranked.SortedAscending()
	out := make([]graph.Result, len(final))
	for i, it := range final {
		out[i] = graph.Result{ID: it.ID, Dist: it.Dist}
	}
	return out, st
}
