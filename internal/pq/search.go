package pq

import (
	"context"

	"ngfix/internal/graph"
	"ngfix/internal/minheap"
)

// GraphSearcher runs beam search over a graph index scoring candidates
// with ADC lookups instead of full-precision distances, then re-ranks the
// best candidates exactly. One full-precision distance is paid per
// re-ranked candidate instead of per visited vertex.
//
// The beam is bounded at ef — exactly like the full-precision searcher,
// so ef buys the same breadth/cost trade-off in both domains — while a
// separate pool (of size Rerank, default 4·k) collects the ADC-best
// vertices seen anywhere during navigation for the exact rerank. The two
// bounds are independent: a wide rerank pool no longer widens the beam
// (the historical bug this type shipped with), and a small ef no longer
// starves the rerank set.
type GraphSearcher struct {
	g *graph.Graph
	q *Quantizer
	s *graph.Searcher
	// Rerank is how many ADC-best candidates get exact re-ranking
	// (default 4·k at search time when zero).
	Rerank int
	// Tier, when set, supplies the full-precision rows for the exact
	// rerank instead of g.Vectors — the demoted (mmap'd / on-disk)
	// vector tier. Ids must correspond to graph ids.
	Tier Tier
}

// NewGraphSearcher pairs a graph with a quantizer trained on the same
// rows (ids must correspond).
func NewGraphSearcher(g *graph.Graph, q *Quantizer) *GraphSearcher {
	if q.Rows() != g.Len() {
		panic("pq: quantizer rows != graph size")
	}
	return &GraphSearcher{g: g, q: q, s: graph.NewSearcher(g)}
}

// tableScorer adapts a per-query ADC table to the graph.Scorer seam.
type tableScorer struct {
	q *Quantizer
	t Table
}

func (ts *tableScorer) ScoreID(id uint32) float32 { return ts.q.ADC(ts.t, int(id)) }

// ScoreIDs is the per-hop batched gather: for each gathered neighbor it
// walks that row's M contiguous code bytes through the table — all the
// memory traffic is the code array (M bytes/vertex) and the table (KS·M
// floats, cache-resident for the whole query).
func (ts *tableScorer) ScoreIDs(ids []uint32, out []float32) {
	q, t := ts.q, ts.t
	m := q.cfg.M
	codes := q.codes
	for i, id := range ids {
		code := codes[int(id)*m : int(id)*m+m]
		var s float32
		for j, c := range code {
			s += t[j][c]
		}
		out[i] = s
	}
}

// Search is SearchCtx without cancellation.
func (s *GraphSearcher) Search(query []float32, k, ef int) ([]graph.Result, graph.Stats) {
	return s.SearchCtx(nil, query, k, ef)
}

// SearchCtx returns the top-k for the query using ADC-guided beam search
// with search list ef and exact re-ranking, polling ctx (nil means never
// cancelled) on the same 32-hop cadence as the full-precision path: a
// cancelled search stops where it stands, reranks what it has, and
// reports Stats.Truncated.
//
// Stats.NDC counts only full-precision distance evaluations (the
// re-rank), mirroring how PQ+graph systems report their savings;
// Stats.ADCLookups counts the compressed-domain navigation work.
func (s *GraphSearcher) SearchCtx(ctx context.Context, query []float32, k, ef int) ([]graph.Result, graph.Stats) {
	g := s.g
	if g.Len() == 0 {
		return nil, graph.Stats{}
	}
	if ef < k {
		ef = k
	}
	rerank := s.Rerank
	if rerank <= 0 {
		rerank = 4 * k
	}
	if rerank < k {
		rerank = k
	}
	ts := tableScorer{q: s.q, t: s.q.BuildTable(query)}
	pool, st := s.s.SearchScoredPoolCtx(ctx, &ts, ef, rerank, g.EntryPoint)

	// Exact re-rank of the ADC-best candidates from the full-precision
	// tier (graph vectors unless a demoted tier is attached).
	rowOf := g.Vectors.Row
	if s.Tier != nil {
		rowOf = s.Tier.Row
	}
	reranked := minheap.NewBounded(k)
	for _, it := range pool {
		d := g.Metric.Distance(query, rowOf(int(it.ID)))
		st.NDC++
		if reranked.WouldAccept(d) {
			reranked.Push(minheap.Item{ID: it.ID, Dist: d})
		}
	}
	final := reranked.SortedAscending()
	out := make([]graph.Result, len(final))
	for i, it := range final {
		out[i] = graph.Result{ID: it.ID, Dist: it.Dist}
	}
	return out, st
}
