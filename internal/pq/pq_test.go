package pq

import (
	"math/rand"
	"testing"

	"ngfix/internal/bruteforce"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/metrics"
	"ngfix/internal/vec"
)

func randomMatrix(seed int64, n, dim int) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			m.Row(i)[j] = float32(rng.NormFloat64())
		}
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	m := randomMatrix(1, 50, 10)
	if _, err := Train(m, Config{M: 3, KS: 8}); err == nil {
		t.Fatal("M not dividing dim accepted")
	}
	if _, err := Train(m, Config{M: 2, KS: 1000}); err == nil {
		t.Fatal("KS > 256 accepted")
	}
	q, err := Train(m, Config{M: 2, KS: 8})
	if err != nil {
		t.Fatal(err)
	}
	if q.Rows() != 50 || q.M() != 2 || q.CodeBytes() != 100 {
		t.Fatalf("shape: rows=%d M=%d bytes=%d", q.Rows(), q.M(), q.CodeBytes())
	}
}

func TestEncodeDecodeReducesError(t *testing.T) {
	m := randomMatrix(2, 500, 16)
	coarse, err := Train(m, Config{M: 2, KS: 4, Iters: 6})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Train(m, Config{M: 8, KS: 64, Iters: 6})
	if err != nil {
		t.Fatal(err)
	}
	ce := coarse.QuantizationError(m)
	fe := fine.QuantizationError(m)
	if fe >= ce {
		t.Fatalf("finer codebook should reduce error: coarse %.4f, fine %.4f", ce, fe)
	}
	if fe <= 0 {
		t.Fatal("quantization error should be positive on random data")
	}
}

func TestADCMatchesDecodedDistance(t *testing.T) {
	m := randomMatrix(3, 200, 8)
	q, err := Train(m, Config{M: 4, KS: 16, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	query := m.Row(7)
	table := q.BuildTable(query)
	for i := 0; i < 20; i++ {
		adc := float64(q.ADC(table, i))
		want := float64(vec.L2Squared(query, q.Decode(i)))
		if diff := adc - want; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("row %d: ADC %.6f != decoded distance %.6f", i, adc, want)
		}
	}
}

func TestADCRankingQuality(t *testing.T) {
	m := randomMatrix(4, 800, 16)
	q, err := Train(m, Config{M: 8, KS: 64, Iters: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Top-10 by ADC should largely overlap the exact top-10.
	query := randomMatrix(5, 1, 16).Row(0)
	table := q.BuildTable(query)
	exact := bruteforce.KNN(m, vec.L2, query, 10, nil)
	type pr struct {
		id uint32
		d  float32
	}
	best := make([]pr, 0, 800)
	for i := 0; i < 800; i++ {
		best = append(best, pr{uint32(i), q.ADC(table, i)})
	}
	for a := 0; a < 30; a++ { // partial selection of top 30
		for b := a + 1; b < len(best); b++ {
			if best[b].d < best[a].d {
				best[a], best[b] = best[b], best[a]
			}
		}
	}
	top := map[uint32]bool{}
	for _, p := range best[:30] {
		top[p.id] = true
	}
	hit := 0
	for _, e := range exact {
		if top[e.ID] {
			hit++
		}
	}
	if hit < 6 {
		t.Fatalf("ADC top-30 contains only %d/10 exact NNs", hit)
	}
}

func TestGraphSearcherEndToEnd(t *testing.T) {
	d := dataset.Generate(dataset.Config{
		Name: "pq-test", N: 1000, NHist: 50, NTest: 40,
		Dim: 16, Clusters: 8, Metric: vec.L2,
		GapMagnitude: 1.2, ClusterStd: 0.25, QueryStdScale: 1.4, Seed: 6,
	})
	h := hnsw.Build(d.Base, hnsw.Config{M: 12, EFConstruction: 100, Metric: vec.L2, Seed: 2})
	g := h.Bottom()
	q, err := Train(d.Base, Config{M: 8, KS: 64, Iters: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gt := bruteforce.AllKNN(d.Base, d.TestOOD, vec.L2, 10)

	pqs := NewGraphSearcher(g, q)
	exact := graph.NewSearcher(g)
	var sumPQ, sumEx float64
	var ndcPQ, ndcEx int64
	for qi := 0; qi < d.TestOOD.Rows(); qi++ {
		query := d.TestOOD.Row(qi)
		rp, sp := pqs.Search(query, 10, 60)
		re, se := exact.Search(query, 10, 60)
		sumPQ += metrics.Recall(graph.IDs(rp), bruteforce.IDs(gt[qi]))
		sumEx += metrics.Recall(graph.IDs(re), bruteforce.IDs(gt[qi]))
		ndcPQ += sp.NDC
		ndcEx += se.NDC
		for i := 1; i < len(rp); i++ {
			if rp[i].Dist < rp[i-1].Dist {
				t.Fatal("PQ results not ascending after rerank")
			}
		}
	}
	n := float64(d.TestOOD.Rows())
	recallPQ, recallEx := sumPQ/n, sumEx/n
	if recallPQ < recallEx-0.1 {
		t.Fatalf("PQ-guided recall %.3f too far below exact %.3f", recallPQ, recallEx)
	}
	if ndcPQ >= ndcEx {
		t.Fatalf("PQ search should need fewer full-precision distances: %d vs %d", ndcPQ, ndcEx)
	}
	t.Logf("recall@10: exact-guided %.3f (NDC %d), ADC-guided %.3f (full-precision NDC %d)",
		recallEx, ndcEx/int64(n), recallPQ, ndcPQ/int64(n))
}

func TestGraphSearcherSkipsDeleted(t *testing.T) {
	m := randomMatrix(7, 100, 8)
	h := hnsw.Build(m, hnsw.Config{M: 8, EFConstruction: 40, Metric: vec.L2, Seed: 1})
	g := h.Bottom()
	g.MarkDeleted(5)
	q, err := Train(m, Config{M: 4, KS: 16, Iters: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := NewGraphSearcher(g, q)
	res, _ := s.Search(m.Row(5), 10, 40)
	for _, r := range res {
		if r.ID == 5 {
			t.Fatal("deleted id returned")
		}
	}
}

func TestNewGraphSearcherMismatchPanics(t *testing.T) {
	m := randomMatrix(8, 20, 8)
	q, _ := Train(m, Config{M: 4, KS: 8, Iters: 3})
	g := graph.New(randomMatrix(9, 30, 8), vec.L2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	NewGraphSearcher(g, q)
}
