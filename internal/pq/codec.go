package pq

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ngfix/internal/vec"
)

// Quantizer wire format (all little-endian):
//
//	magic   uint32  0x4E475051 ("NGPQ")
//	version uint32  1
//	dim     uint32
//	m       uint32
//	ks      uint32  effective KS after any training clamp
//	iters   uint32  Config.Iters (round-tripped so Config compares equal)
//	seed    int64   Config.Seed
//	rows    uint64
//	centroids M × KS × sub float32 (bit patterns, row-major per subspace)
//	codes   rows × M bytes
//
// Centroids and codes round-trip bit-identically: a recovered quantizer
// encodes exactly the bytes the persisted one would, which is what lets
// recovery re-encode WAL-replayed inserts instead of retraining.
const (
	codecMagic   = 0x4E475051
	codecVersion = 1
)

// Encode serializes the quantizer. The caller owns framing and
// checksumming (the persist layer wraps this payload the same way it
// wraps snapshots).
func (q *Quantizer) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [40]byte
	binary.LittleEndian.PutUint32(hdr[0:], codecMagic)
	binary.LittleEndian.PutUint32(hdr[4:], codecVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(q.dim))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(q.cfg.M))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(q.cfg.KS))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(q.cfg.Iters))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(q.cfg.Seed))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(q.rows))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var fb [4]byte
	for _, cents := range q.centroids {
		for _, v := range cents.Data() {
			binary.LittleEndian.PutUint32(fb[:], math.Float32bits(v))
			if _, err := bw.Write(fb[:]); err != nil {
				return err
			}
		}
	}
	if _, err := bw.Write(q.codes); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadQuantizer deserializes a quantizer written by Encode.
func ReadQuantizer(r io.Reader) (*Quantizer, error) {
	var hdr [40]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pq: reading header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != codecMagic {
		return nil, fmt.Errorf("pq: bad magic 0x%08x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != codecVersion {
		return nil, fmt.Errorf("pq: unsupported version %d", v)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	m := int(binary.LittleEndian.Uint32(hdr[12:]))
	ks := int(binary.LittleEndian.Uint32(hdr[16:]))
	iters := int(binary.LittleEndian.Uint32(hdr[20:]))
	seed := int64(binary.LittleEndian.Uint64(hdr[24:]))
	rows := int(binary.LittleEndian.Uint64(hdr[32:]))
	if dim <= 0 || m <= 0 || dim%m != 0 || ks <= 0 || ks > 256 || rows < 0 {
		return nil, fmt.Errorf("pq: corrupt header (dim=%d m=%d ks=%d rows=%d)", dim, m, ks, rows)
	}
	q := &Quantizer{
		cfg: Config{M: m, KS: ks, Iters: iters, Seed: seed},
		dim: dim,
		sub: dim / m,
		rows: rows,
	}
	q.centroids = make([]*vec.Matrix, m)
	buf := make([]byte, ks*q.sub*4)
	for i := 0; i < m; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("pq: reading centroids: %w", err)
		}
		cents := vec.NewMatrix(ks, q.sub)
		data := cents.Data()
		for j := range data {
			data[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:]))
		}
		q.centroids[i] = cents
	}
	q.codes = make([]byte, rows*m)
	if _, err := io.ReadFull(r, q.codes); err != nil {
		return nil, fmt.Errorf("pq: reading codes: %w", err)
	}
	return q, nil
}
