package pq

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"ngfix/internal/vec"
)

// Tier is a read-only source of full-precision rows for exact reranking.
// A PQ-fused search navigates entirely in the compressed domain and
// touches the tier only for its top ~4·k candidates, so the tier can live
// outside the heap (mmap'd, on disk) without slowing navigation.
type Tier interface {
	// Row returns row i (valid until the next Append on mutable tiers).
	Row(i int) []float32
	// Rows returns how many rows the tier holds.
	Rows() int
	// ResidentBytes reports how many of the tier's bytes are pinned in
	// heap memory. An mmap-backed tier reports only its unflushed tail:
	// the mapped region is page cache the kernel reclaims under pressure.
	ResidentBytes() int64
}

// MatrixTier serves rerank rows straight from an in-heap matrix — the
// default when no tier file is configured (vectors stay resident, PQ
// still saves all navigation NDC).
type MatrixTier struct{ M *vec.Matrix }

func (t MatrixTier) Row(i int) []float32 { return t.M.Row(i) }
func (t MatrixTier) Rows() int           { return t.M.Rows() }
func (t MatrixTier) ResidentBytes() int64 {
	return int64(t.M.Rows()) * int64(t.M.Dim()) * 4
}

// Tier file format (little-endian):
//
//	magic   uint32  0x4E475654 ("NGVT")
//	version uint32  1
//	dim     uint32
//	rows    uint32
//	data    rows × dim float32
//
// The 16-byte header keeps the row data 4-byte aligned from the start of
// the mapping, so an mmap'd file is served by casting pages in place.
const (
	tierMagic      = 0x4E475654
	tierVersion    = 1
	tierHeaderSize = 16
)

// WriteTierFile writes m as a tier file at path (atomic tmp+rename, so a
// crash mid-write never leaves a torn file with the final name).
func WriteTierFile(path string, m *vec.Matrix) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	var hdr [tierHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], tierMagic)
	binary.LittleEndian.PutUint32(hdr[4:], tierVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(m.Dim()))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(m.Rows()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fail(err)
	}
	var fb [4]byte
	for _, v := range m.Data() {
		binary.LittleEndian.PutUint32(fb[:], math.Float32bits(v))
		if _, err := bw.Write(fb[:]); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// FileTier serves rerank rows from a tier file — mmap'd where the
// platform supports it (the demoted-vector tier: navigation never touches
// these pages, rerank faults in only the few it needs) — plus an in-heap
// tail for rows appended since the file was written. Appends are
// single-writer like the rest of the online index; concurrent readers of
// already-present rows are safe because neither the mapping nor written
// tail rows move.
type FileTier struct {
	dim  int
	base *vec.Matrix // file-backed rows (mmap or heap fallback)
	raw  []byte      // mapping to release on Close; nil on the heap fallback
	tail *vec.Matrix // rows appended after the file was sealed
}

// OpenFileTier opens a tier file written by WriteTierFile.
func OpenFileTier(path string) (*FileTier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var hdr [tierHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("pq: tier header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != tierMagic {
		return nil, fmt.Errorf("pq: tier bad magic 0x%08x", m)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != tierVersion {
		return nil, fmt.Errorf("pq: tier unsupported version %d", v)
	}
	dim := int(binary.LittleEndian.Uint32(hdr[8:]))
	rows := int(binary.LittleEndian.Uint32(hdr[12:]))
	if dim <= 0 || rows < 0 {
		return nil, fmt.Errorf("pq: tier corrupt header (dim=%d rows=%d)", dim, rows)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	want := int64(tierHeaderSize) + int64(rows)*int64(dim)*4
	if st.Size() < want {
		return nil, fmt.Errorf("pq: tier truncated: %d bytes, want %d", st.Size(), want)
	}
	base, raw, err := mapTier(f, dim, rows)
	if err != nil {
		return nil, err
	}
	return &FileTier{
		dim:  dim,
		base: base,
		raw:  raw,
		tail: vec.NewMatrix(0, dim),
	}, nil
}

// AppendRow adds one row to the in-heap tail (ids continue past the
// file's rows).
func (t *FileTier) AppendRow(row []float32) { t.tail.Append(row) }

func (t *FileTier) Row(i int) []float32 {
	if i < t.base.Rows() {
		return t.base.Row(i)
	}
	return t.tail.Row(i - t.base.Rows())
}

func (t *FileTier) Rows() int { return t.base.Rows() + t.tail.Rows() }

func (t *FileTier) ResidentBytes() int64 {
	resident := int64(t.tail.Rows()) * int64(t.dim) * 4
	if t.raw == nil {
		// Heap fallback platform: the base rows are resident too.
		resident += int64(t.base.Rows()) * int64(t.dim) * 4
	}
	return resident
}

// Close releases the mapping (no-op on the heap fallback). Rows must not
// be used after Close.
func (t *FileTier) Close() error { return unmapTier(t.raw) }
