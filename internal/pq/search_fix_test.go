package pq

import (
	"bytes"
	"context"
	"testing"

	"ngfix/internal/hnsw"
	"ngfix/internal/vec"
)

// TestEFBoundsBeam is the regression test for the historical searcher
// bug: the result heap was bounded at rerank = max(4·k, ef), so the beam
// was always rerank-wide and lowering ef bought nothing. With the beam
// bounded at ef proper, navigation cost (hops, ADC lookups) must shrink
// monotonically as ef drops, while the rerank NDC stays pinned to the
// pool size, not ef.
func TestEFBoundsBeam(t *testing.T) {
	m := randomMatrix(21, 2000, 16)
	h := hnsw.Build(m, hnsw.Config{M: 12, EFConstruction: 100, Metric: vec.L2, Seed: 2})
	g := h.Bottom()
	q, err := Train(m, Config{M: 8, KS: 64, Iters: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := NewGraphSearcher(g, q)
	const k = 10
	efs := []int{160, 80, 40, 20, 10}
	queries := randomMatrix(22, 20, 16)

	var prevHops, prevADC, prevNDC int64
	for i, ef := range efs {
		var hops, adc, ndc int64
		for qi := 0; qi < queries.Rows(); qi++ {
			_, st := s.Search(queries.Row(qi), k, ef)
			hops += int64(st.Hops)
			adc += st.ADCLookups
			ndc += st.NDC
		}
		if i > 0 {
			if hops > prevHops || adc > prevADC {
				t.Fatalf("ef=%d costs more than ef=%d: hops %d > %d or ADC %d > %d — ef is not bounding the beam",
					ef, efs[i-1], hops, prevHops, adc, prevADC)
			}
			if ndc > prevNDC {
				t.Fatalf("rerank NDC grew as ef dropped: %d > %d", ndc, prevNDC)
			}
		}
		prevHops, prevADC, prevNDC = hops, adc, ndc
	}
	// Monotone non-increasing point-to-point, and strictly cheaper across
	// the full sweep: a no-op ef would hold all counts flat.
	var hopsMax, hopsMin int64
	for qi := 0; qi < queries.Rows(); qi++ {
		_, stWide := s.Search(queries.Row(qi), k, efs[0])
		hopsMax += int64(stWide.Hops)
		_, stNarrow := s.Search(queries.Row(qi), k, efs[len(efs)-1])
		hopsMin += int64(stNarrow.Hops)
	}
	if hopsMin >= hopsMax {
		t.Fatalf("ef sweep did not change navigation cost (hops %d at ef=%d vs %d at ef=%d)",
			hopsMin, efs[len(efs)-1], hopsMax, efs[0])
	}
}

// TestRerankPoolIndependentOfEF pins the other half of the fix: the
// rerank pool depth tracks Rerank (default 4·k), not ef, so a narrow
// beam still reranks a full candidate pool.
func TestRerankPoolIndependentOfEF(t *testing.T) {
	m := randomMatrix(23, 1500, 16)
	h := hnsw.Build(m, hnsw.Config{M: 12, EFConstruction: 100, Metric: vec.L2, Seed: 4})
	g := h.Bottom()
	q, err := Train(m, Config{M: 8, KS: 64, Iters: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := NewGraphSearcher(g, q)
	const k = 10
	query := randomMatrix(24, 1, 16).Row(0)
	_, stNarrow := s.Search(query, k, k) // ef = k, well under 4·k
	if stNarrow.NDC != 4*k {
		t.Fatalf("rerank NDC=%d at ef=%d, want the full pool of %d", stNarrow.NDC, k, 4*k)
	}
	s.Rerank = 7 * k
	_, stWide := s.Search(query, k, k)
	if stWide.NDC != 7*k {
		t.Fatalf("rerank NDC=%d with Rerank=%d, want %d", stWide.NDC, 7*k, 7*k)
	}
}

func TestSearchCtxTruncates(t *testing.T) {
	m := randomMatrix(25, 1200, 16)
	h := hnsw.Build(m, hnsw.Config{M: 10, EFConstruction: 80, Metric: vec.L2, Seed: 6})
	g := h.Bottom()
	q, err := Train(m, Config{M: 8, KS: 32, Iters: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s := NewGraphSearcher(g, q)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, st := s.SearchCtx(ctx, m.Row(0), 10, 200)
	if !st.Truncated {
		t.Fatal("cancelled PQ search did not report truncation")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("truncated results not sorted")
		}
	}
	// Uncancelled context: never truncated.
	_, st = s.SearchCtx(context.Background(), m.Row(0), 10, 60)
	if st.Truncated {
		t.Fatal("live context reported truncation")
	}
}

func TestDefaultConfigRejectsPrimeDim(t *testing.T) {
	if _, err := DefaultConfig(13); err == nil {
		t.Fatal("DefaultConfig(13) should refuse the M=1 degeneration")
	}
	cfg, err := DefaultConfig(96)
	if err != nil || cfg.M != 8 {
		t.Fatalf("DefaultConfig(96) = %+v, %v; want M=8", cfg, err)
	}
	cfg, err = DefaultConfig(14)
	if err != nil || cfg.M != 7 {
		t.Fatalf("DefaultConfig(14) = %+v, %v; want M=7", cfg, err)
	}
	if fb := DefaultOrScalarConfig(13); fb.M != 1 {
		t.Fatalf("DefaultOrScalarConfig(13).M = %d, want the documented 1", fb.M)
	}
}

func TestAppendRowMatchesBatchEncode(t *testing.T) {
	m := randomMatrix(26, 300, 16)
	q, err := Train(m, Config{M: 4, KS: 32, Iters: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	extra := randomMatrix(27, 5, 16)
	// Reference: encode directly with the trained codebooks.
	want := make([]byte, q.M())
	scratch := make([]float32, q.Config().KS)
	for i := 0; i < extra.Rows(); i++ {
		q.encodeInto(extra.Row(i), want, scratch)
		q.AppendRow(extra.Row(i))
		got := q.Code(q.Rows() - 1)
		if !bytes.Equal(got, want) {
			t.Fatalf("row %d: AppendRow code %v != direct encode %v", i, got, want)
		}
	}
	if q.Rows() != 305 || q.CodeBytes() != 305*4 {
		t.Fatalf("shape after appends: rows=%d bytes=%d", q.Rows(), q.CodeBytes())
	}
}
