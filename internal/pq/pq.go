// Package pq implements Product Quantization (Jégou et al., TPAMI 2011),
// the compression family the reproduced paper's related-work section
// covers, and its standard combination with graph search: navigate the
// graph scoring candidates with cheap asymmetric-distance (ADC) table
// lookups, then re-rank the best candidates with exact distances. The
// combination ("graph-based methods can be combined with other methods to
// achieve better overall performance") trades a small recall loss for a
// large reduction in full-precision distance work.
package pq

import (
	"fmt"
	"math"
	"math/rand"

	"ngfix/internal/vec"
)

// Config holds PQ training parameters.
type Config struct {
	// M is the number of subspaces (must divide the dimension).
	M int
	// KS is the number of centroids per subspace (≤ 256; codes are bytes).
	KS int
	// Iters is the number of k-means iterations per subspace.
	Iters int
	// Seed drives centroid initialization.
	Seed int64
}

// DefaultConfig picks a standard setting for the given dimension: the
// largest M ≤ 8 that divides dim, with 64 centroids per subspace. It
// refuses dimensions where only M=1 would fit (prime dims, say): a single
// subspace degenerates PQ to plain vector quantization with KS
// representable points total, which silently destroys recall. Callers
// that genuinely want that arm opt in via DefaultOrScalarConfig or an
// explicit Config{M: 1}.
func DefaultConfig(dim int) (Config, error) {
	m := 8
	for dim%m != 0 && m > 1 {
		m--
	}
	if m == 1 {
		return Config{}, fmt.Errorf("pq: no subspace count in 2..8 divides dim=%d; set Config.M explicitly (M=1 degenerates to scalar vector quantization)", dim)
	}
	return Config{M: m, KS: 64, Iters: 8, Seed: 23}, nil
}

// DefaultOrScalarConfig is DefaultConfig with the documented explicit
// fallback: dimensions no M in 2..8 divides get M=1 — plain vector
// quantization, still a valid (if coarse) arm for diagnostics and
// benchmarks that must run on any dimension.
func DefaultOrScalarConfig(dim int) Config {
	cfg, err := DefaultConfig(dim)
	if err != nil {
		return Config{M: 1, KS: 64, Iters: 8, Seed: 23}
	}
	return cfg
}

// Quantizer is a trained product quantizer plus the codes of a dataset.
type Quantizer struct {
	cfg Config
	dim int
	sub int // dim / M
	// centroids[m] is a KS×sub matrix of subspace centroids.
	centroids []*vec.Matrix
	// codes holds M bytes per encoded row.
	codes []byte
	rows  int

	// encScratch is AppendRow's centroid-distance buffer, reused across
	// incremental encodes (single writer; see AppendRow).
	encScratch []float32
}

// Train fits the codebooks on the dataset and encodes every row.
func Train(data *vec.Matrix, cfg Config) (*Quantizer, error) {
	dim := data.Dim()
	if cfg.M <= 0 || dim%cfg.M != 0 {
		return nil, fmt.Errorf("pq: M=%d must divide dim=%d", cfg.M, dim)
	}
	if cfg.KS <= 0 || cfg.KS > 256 {
		return nil, fmt.Errorf("pq: KS=%d out of range (1..256)", cfg.KS)
	}
	if cfg.Iters <= 0 {
		cfg.Iters = 8
	}
	n := data.Rows()
	ks := cfg.KS
	if ks > n {
		ks = n
	}
	q := &Quantizer{cfg: cfg, dim: dim, sub: dim / cfg.M, rows: n}
	q.cfg.KS = ks
	rng := rand.New(rand.NewSource(cfg.Seed))

	q.centroids = make([]*vec.Matrix, cfg.M)
	for m := 0; m < cfg.M; m++ {
		q.centroids[m] = trainSubspace(data, m, q.sub, ks, cfg.Iters, rng)
	}
	q.codes = make([]byte, n*cfg.M)
	scratch := make([]float32, ks)
	for i := 0; i < n; i++ {
		q.encodeInto(data.Row(i), q.codes[i*cfg.M:(i+1)*cfg.M], scratch)
	}
	return q, nil
}

// trainSubspace runs k-means on one coordinate block.
func trainSubspace(data *vec.Matrix, m, sub, ks, iters int, rng *rand.Rand) *vec.Matrix {
	n := data.Rows()
	cents := vec.NewMatrix(ks, sub)
	// k-means++-lite: random distinct starting rows.
	perm := rng.Perm(n)
	for c := 0; c < ks; c++ {
		copy(cents.Row(c), data.Row(perm[c])[m*sub:(m+1)*sub])
	}
	assign := make([]int, n)
	dists := make([]float32, ks)
	for it := 0; it < iters; it++ {
		changed := 0
		for i := 0; i < n; i++ {
			block := data.Row(i)[m*sub : (m+1)*sub]
			// One batched scan over the centroid matrix per point: the
			// centroids are contiguous rows, exactly the batch kernel's
			// streaming shape.
			vec.DistancesRows(vec.L2, block, cents, 0, ks, dists)
			best, bestD := 0, float32(math.Inf(1))
			for c, d := range dists {
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		// Recompute centroids.
		counts := make([]int, ks)
		sums := make([][]float64, ks)
		for c := range sums {
			sums[c] = make([]float64, sub)
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			block := data.Row(i)[m*sub : (m+1)*sub]
			for j, v := range block {
				sums[c][j] += float64(v)
			}
		}
		for c := 0; c < ks; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster from a random point.
				copy(cents.Row(c), data.Row(rng.Intn(n))[m*sub:(m+1)*sub])
				continue
			}
			row := cents.Row(c)
			for j := range row {
				row[j] = float32(sums[c][j] / float64(counts[c]))
			}
		}
		if changed == 0 {
			break
		}
	}
	return cents
}

// encodeInto writes row's M code bytes into dst. scratch must hold at
// least KS floats; it receives each subspace's centroid distances from
// one batched scan.
func (q *Quantizer) encodeInto(row []float32, dst []byte, scratch []float32) {
	dists := scratch[:q.cfg.KS]
	for m := 0; m < q.cfg.M; m++ {
		block := row[m*q.sub : (m+1)*q.sub]
		vec.DistancesRows(vec.L2, block, q.centroids[m], 0, q.cfg.KS, dists)
		best, bestD := 0, float32(math.Inf(1))
		for c, d := range dists {
			if d < bestD {
				best, bestD = c, d
			}
		}
		dst[m] = byte(best)
	}
}

// AppendRow encodes one new row with the frozen codebooks and appends its
// code, growing the encoded set by one (ids stay aligned with the graph:
// the appended row gets id Rows()-1 after the call). Training never
// reruns — an online index encodes inserts incrementally against the
// codebook it trained (or recovered), which is what keeps persisted codes
// and replayed codes bit-identical. Not safe for concurrent use; callers
// serialize appends under their write lock.
func (q *Quantizer) AppendRow(row []float32) {
	if len(row) != q.dim {
		panic("pq: row dimension mismatch")
	}
	if cap(q.encScratch) < q.cfg.KS {
		q.encScratch = make([]float32, q.cfg.KS)
	}
	var code [256]byte
	dst := code[:q.cfg.M]
	q.encodeInto(row, dst, q.encScratch)
	q.codes = append(q.codes, dst...)
	q.rows++
}

// AppendRowsFrom encodes rows [lo, hi) of m with AppendRow — the recovery
// path's bulk form for re-encoding WAL-replayed inserts.
func (q *Quantizer) AppendRowsFrom(m *vec.Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		q.AppendRow(m.Row(i))
	}
}

// CloneEmpty returns a quantizer sharing this one's frozen codebooks but
// holding no codes: the form a reshard child starts from, re-encoding its
// own rows under the parent's centroids so codes stay comparable across
// the split (row-stable within each child, same codebook everywhere).
// The centroid matrices are shared, not copied — they are immutable after
// Train.
func (q *Quantizer) CloneEmpty() *Quantizer {
	return &Quantizer{
		cfg:       q.cfg,
		dim:       q.dim,
		sub:       q.sub,
		centroids: q.centroids,
	}
}

// Code returns the code bytes of row i (aliasing internal storage).
func (q *Quantizer) Code(i int) []byte { return q.codes[i*q.cfg.M : (i+1)*q.cfg.M] }

// Rows returns the number of encoded rows.
func (q *Quantizer) Rows() int { return q.rows }

// M returns the number of subspaces.
func (q *Quantizer) M() int { return q.cfg.M }

// Dim returns the trained vector dimension.
func (q *Quantizer) Dim() int { return q.dim }

// Config returns the effective training configuration (KS may be smaller
// than requested when the training set had fewer rows).
func (q *Quantizer) Config() Config { return q.cfg }

// CodeBytes returns the total size of the stored codes in bytes.
func (q *Quantizer) CodeBytes() int { return len(q.codes) }

// CodebookBytes returns the size of the centroid tables in bytes — with
// CodeBytes, the resident cost of serving from the compressed domain.
func (q *Quantizer) CodebookBytes() int {
	return q.cfg.M * q.cfg.KS * q.sub * 4
}

// Decode reconstructs the quantized approximation of row i.
func (q *Quantizer) Decode(i int) []float32 {
	out := make([]float32, q.dim)
	code := q.Code(i)
	for m := 0; m < q.cfg.M; m++ {
		copy(out[m*q.sub:(m+1)*q.sub], q.centroids[m].Row(int(code[m])))
	}
	return out
}

// Table is the per-query ADC lookup table: Table[m][c] is the partial
// squared distance between the query's m-th block and centroid c.
type Table [][]float32

// BuildTable precomputes the ADC table for a query (L2 / squared-distance
// semantics; for inner product or cosine on normalized data the L2 table
// preserves the ranking).
func (q *Quantizer) BuildTable(query []float32) Table {
	if len(query) != q.dim {
		panic("pq: query dimension mismatch")
	}
	t := make(Table, q.cfg.M)
	for m := 0; m < q.cfg.M; m++ {
		block := query[m*q.sub : (m+1)*q.sub]
		row := make([]float32, q.cfg.KS)
		// The m-th codebook is a contiguous KS×sub matrix: one batched
		// streaming scan fills the whole table row.
		vec.DistancesRows(vec.L2, block, q.centroids[m], 0, q.cfg.KS, row)
		t[m] = row
	}
	return t
}

// ADC returns the asymmetric approximate squared distance between the
// table's query and encoded row i: M table lookups, no float math on the
// original vectors.
func (q *Quantizer) ADC(t Table, i int) float32 {
	code := q.Code(i)
	var s float32
	for m, c := range code {
		s += t[m][c]
	}
	return s
}

// QuantizationError returns the mean squared reconstruction error over
// the encoded dataset (diagnostic).
func (q *Quantizer) QuantizationError(data *vec.Matrix) float64 {
	n := data.Rows()
	if n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(vec.L2Squared(data.Row(i), q.Decode(i)))
	}
	return sum / float64(n)
}
