package pq

import (
	"path/filepath"
	"testing"

	"ngfix/internal/vec"
)

func TestFileTierRoundTrip(t *testing.T) {
	m := randomMatrix(41, 120, 12)
	path := filepath.Join(t.TempDir(), "vectors.tier")
	if err := WriteTierFile(path, m); err != nil {
		t.Fatal(err)
	}
	tier, err := OpenFileTier(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tier.Close()
	if tier.Rows() != m.Rows() {
		t.Fatalf("rows = %d, want %d", tier.Rows(), m.Rows())
	}
	for i := 0; i < m.Rows(); i++ {
		a, b := m.Row(i), tier.Row(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("row %d differs at %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}

	// Appended tail rows continue the id space and are the only resident
	// bytes on mmap platforms.
	base := tier.ResidentBytes()
	tail := randomMatrix(42, 3, 12)
	for i := 0; i < tail.Rows(); i++ {
		tier.AppendRow(tail.Row(i))
	}
	if tier.Rows() != 123 {
		t.Fatalf("rows after append = %d, want 123", tier.Rows())
	}
	for i := 0; i < 3; i++ {
		got := tier.Row(120 + i)
		want := tail.Row(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("tail row %d differs", i)
			}
		}
	}
	if tier.ResidentBytes() != base+3*12*4 {
		t.Fatalf("resident bytes %d, want %d", tier.ResidentBytes(), base+3*12*4)
	}
}

func TestFileTierEmptyAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.tier")
	if err := WriteTierFile(empty, vec.NewMatrix(0, 8)); err != nil {
		t.Fatal(err)
	}
	tier, err := OpenFileTier(empty)
	if err != nil {
		t.Fatal(err)
	}
	if tier.Rows() != 0 {
		t.Fatalf("empty tier rows = %d", tier.Rows())
	}
	tier.AppendRow(make([]float32, 8))
	if tier.Rows() != 1 {
		t.Fatal("append to empty tier failed")
	}
	tier.Close()

	if _, err := OpenFileTier(filepath.Join(dir, "missing.tier")); err == nil {
		t.Fatal("missing tier file accepted")
	}
}
