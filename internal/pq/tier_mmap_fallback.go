//go:build !(linux || darwin || freebsd || netbsd || openbsd)

package pq

import (
	"encoding/binary"
	"io"
	"math"
	"os"

	"ngfix/internal/vec"
)

// mapTier on platforms without syscall.Mmap reads the payload into the
// heap: the tier still works, it just stays resident (ResidentBytes
// reports it honestly).
func mapTier(f *os.File, dim, rows int) (*vec.Matrix, []byte, error) {
	if _, err := f.Seek(tierHeaderSize, io.SeekStart); err != nil {
		return nil, nil, err
	}
	buf := make([]byte, rows*dim*4)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, err
	}
	m := vec.NewMatrix(rows, dim)
	data := m.Data()
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return m, nil, nil
}

func unmapTier(raw []byte) error { return nil }
