package replica

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"

	"ngfix/internal/persist"
)

// Source is where a replica pulls its shard's state from: the leader's
// replication position, its current snapshot, and its op log. Three
// implementations cover the deployment shapes: StoreSource reads a live
// Store in-process (a leader hosting its own failover replicas),
// DirSource follows the leader's persistence directory on shared storage
// (same-host tests, NFS), and HTTPSource speaks the server's
// /v1/replicate/* endpoints across machines.
//
// All three return persist.ErrGenerationGone when the requested WAL
// generation can no longer be served — the replica's cue that more
// tailing cannot close the gap and only a fresh snapshot can.
type Source interface {
	// Status returns the leader's current replication position.
	Status() (persist.ReplicationStatus, error)
	// Snapshot opens the leader's newest snapshot stream, returning the
	// generation it seals. The caller owns the ReadCloser and must run
	// the bytes through persist.DecodeSnapshot (the checksum is the only
	// thing standing between a cut transfer and a silently short graph).
	Snapshot() (uint64, io.ReadCloser, error)
	// WAL opens generation gen's op log positioned at offset — the byte
	// just past the last record the replica applied.
	WAL(gen uint64, offset int64) (io.ReadCloser, error)
}

// StoreSource serves replication straight from a live Store — the
// in-process path a leader uses to feed its own hot-standby replicas.
// Reads never take the fixer's locks, only the store's brief position
// mutex, so a wedged leader WAL (appends blocked, not failed) does not
// stop its replicas from tailing what was already written.
type StoreSource struct {
	St *persist.Store
}

func (s StoreSource) Status() (persist.ReplicationStatus, error) {
	return s.St.ReplicationStatus(), nil
}

func (s StoreSource) Snapshot() (uint64, io.ReadCloser, error) { return s.St.OpenSnapshot() }

func (s StoreSource) WAL(gen uint64, offset int64) (io.ReadCloser, error) {
	return s.St.OpenWAL(gen, offset)
}

// DirSource follows a leader's persistence directory through the
// filesystem — the same-host / shared-storage deployment, and the
// fault-injection surface for tests (a directory can be copied, frozen,
// or truncated at will). It holds no handles between calls, so the
// leader rotating generations under it surfaces as ErrGenerationGone on
// the next poll, exactly like the other sources.
type DirSource struct {
	Dir string
}

func (d DirSource) Status() (persist.ReplicationStatus, error) {
	gens, err := persist.ScanGenerations(nil, d.Dir)
	if err != nil {
		return persist.ReplicationStatus{}, fmt.Errorf("replica: scan %s: %w", d.Dir, err)
	}
	if len(gens) == 0 {
		return persist.ReplicationStatus{}, fmt.Errorf("replica: no snapshot in %s", d.Dir)
	}
	st := persist.ReplicationStatus{Generation: gens[0]}
	f, err := os.Open(filepath.Join(d.Dir, persist.WALFileName(st.Generation)))
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil // snapshot published, log not yet created: position zero
		}
		return persist.ReplicationStatus{}, err
	}
	defer f.Close()
	// Count only intact records: the file may end in a torn append, and
	// the position must always name a record boundary.
	sc := persist.NewLogScanner(f, 0)
	for sc.Next() {
		st.WALRecords++
	}
	st.WALBytes = sc.Offset()
	return st, nil
}

func (d DirSource) Snapshot() (uint64, io.ReadCloser, error) {
	st, err := d.Status()
	if err != nil {
		return 0, nil, err
	}
	f, err := os.Open(filepath.Join(d.Dir, persist.SnapshotFileName(st.Generation)))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, persist.ErrGenerationGone // rotated between scan and open
		}
		return 0, nil, err
	}
	return st.Generation, f, nil
}

func (d DirSource) WAL(gen uint64, offset int64) (io.ReadCloser, error) {
	f, err := os.Open(filepath.Join(d.Dir, persist.WALFileName(gen)))
	if err != nil {
		if os.IsNotExist(err) {
			// Distinguish "rotated away" from "not created yet": if the
			// generation's snapshot is also gone, the leader moved on.
			if _, serr := os.Stat(filepath.Join(d.Dir, persist.SnapshotFileName(gen))); serr != nil {
				return nil, persist.ErrGenerationGone
			}
			if offset == 0 {
				return io.NopCloser(emptyReader{}), nil
			}
			return nil, persist.ErrGenerationGone
		}
		return nil, err
	}
	if offset > 0 {
		n, err := io.CopyN(io.Discard, f, offset)
		if err != nil && err != io.EOF {
			f.Close()
			return nil, err
		}
		if n < offset {
			f.Close()
			return nil, persist.ErrGenerationGone // log shrank under the follower
		}
	}
	return f, nil
}

type emptyReader struct{}

func (emptyReader) Read([]byte) (int, error) { return 0, io.EOF }

// HTTPSource replicates over the server's /v1/replicate/* endpoints —
// the cross-machine deployment. A 410 Gone maps to ErrGenerationGone;
// every other non-200 is a transient error the replica's backoff
// absorbs.
type HTTPSource struct {
	// Base is the leader's root URL, e.g. "http://host:8080".
	Base string
	// Shard selects which of the leader's shards to follow.
	Shard int
	// Client is the HTTP client (nil → http.DefaultClient).
	Client *http.Client
}

func (h HTTPSource) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

func (h HTTPSource) get(path string, q url.Values) (*http.Response, error) {
	u := h.Base + path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := h.client().Get(u)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return resp, nil
	case http.StatusGone:
		resp.Body.Close()
		return nil, persist.ErrGenerationGone
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		resp.Body.Close()
		return nil, fmt.Errorf("replica: %s: %s: %s", path, resp.Status, body)
	}
}

func (h HTTPSource) Status() (persist.ReplicationStatus, error) {
	resp, err := h.get("/v1/replicate/status", url.Values{"shard": {strconv.Itoa(h.Shard)}})
	if err != nil {
		return persist.ReplicationStatus{}, err
	}
	defer resp.Body.Close()
	var st persist.ReplicationStatus
	if err := decodeJSON(resp.Body, &st); err != nil {
		return persist.ReplicationStatus{}, fmt.Errorf("replica: decode status: %w", err)
	}
	return st, nil
}

func (h HTTPSource) Snapshot() (uint64, io.ReadCloser, error) {
	resp, err := h.get("/v1/replicate/snapshot", url.Values{"shard": {strconv.Itoa(h.Shard)}})
	if err != nil {
		return 0, nil, err
	}
	gen, err := strconv.ParseUint(resp.Header.Get(GenerationHeader), 10, 64)
	if err != nil || gen == 0 {
		resp.Body.Close()
		return 0, nil, fmt.Errorf("replica: snapshot response missing %s header", GenerationHeader)
	}
	return gen, resp.Body, nil
}

func (h HTTPSource) WAL(gen uint64, offset int64) (io.ReadCloser, error) {
	resp, err := h.get("/v1/replicate/wal", url.Values{
		"shard":  {strconv.Itoa(h.Shard)},
		"gen":    {strconv.FormatUint(gen, 10)},
		"offset": {strconv.FormatInt(offset, 10)},
	})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// GenerationHeader carries the snapshot's generation on
// /v1/replicate/snapshot responses.
const GenerationHeader = "X-Ngfix-Generation"
