package replica

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

// cutSource wraps a Source and kills transfers at chosen byte offsets —
// the wire-level fault surface: a snapshot ship dying mid-transfer, a
// WAL read cut mid-record. Each entry in snapCuts / walCuts is consumed
// by one call; -1 means deliver intact.
type cutSource struct {
	Source
	mu       sync.Mutex
	snapCuts []int
	walCuts  []int
}

func (c *cutSource) nextCut(cuts *[]int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(*cuts) == 0 {
		return -1
	}
	cut := (*cuts)[0]
	*cuts = (*cuts)[1:]
	return cut
}

func cutStream(rc io.ReadCloser, cut int) (io.ReadCloser, error) {
	data, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		return nil, err
	}
	if cut > len(data) {
		cut = len(data)
	}
	return io.NopCloser(bytes.NewReader(data[:cut])), nil
}

func (c *cutSource) Snapshot() (uint64, io.ReadCloser, error) {
	gen, rc, err := c.Source.Snapshot()
	if err != nil {
		return gen, rc, err
	}
	cut := c.nextCut(&c.snapCuts)
	if cut < 0 {
		return gen, rc, nil
	}
	short, err := cutStream(rc, cut)
	return gen, short, err
}

func (c *cutSource) WAL(gen uint64, offset int64) (io.ReadCloser, error) {
	rc, err := c.Source.WAL(gen, offset)
	if err != nil {
		return nil, err
	}
	cut := c.nextCut(&c.walCuts)
	if cut < 0 {
		return rc, nil
	}
	return cutStream(rc, cut)
}

// remainingWALCuts reports how many injected WAL cuts are unconsumed.
func (c *cutSource) remainingWALCuts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.walCuts)
}

// TestSnapshotShippingKilledAtArbitraryOffsets: every truncated ship
// must fail the checksum and be retried — the replica must never serve a
// graph decoded from a partial snapshot, and must converge once a
// transfer completes.
func TestSnapshotShippingKilledAtArbitraryOffsets(t *testing.T) {
	l := newLeader(t, t.TempDir())
	snapLen := int(mustSnapshotLen(t, l))
	cuts := []int{0, 1, 19, 20, snapLen / 3, snapLen / 2, snapLen - 1}
	src := &cutSource{Source: StoreSource{St: l.st}, snapCuts: cuts}
	r := startReplica(t, src, Config{})

	waitCaughtUp(t, r, l.st)
	st := r.Status()
	if st.TailErrors < int64(len(cuts)) {
		t.Fatalf("only %d errors recorded for %d killed transfers", st.TailErrors, len(cuts))
	}
	graphsIdentical(t, l.fx.Index().G, replicaGraph(r))

	// And the replica still tails normally afterwards.
	l.mutate(t, 2)
	waitCaughtUp(t, r, l.st)
	graphsIdentical(t, l.fx.Index().G, replicaGraph(r))
}

func mustSnapshotLen(t *testing.T, l *leader) int64 {
	t.Helper()
	_, rc, err := l.st.OpenSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	n, err := io.Copy(io.Discard, rc)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestWALTruncatedMidRecord: tail reads cut inside a record must apply
// the intact prefix, resume from the record boundary, and converge with
// no resync — a torn tail is an ordinary condition, not a gap.
func TestWALTruncatedMidRecord(t *testing.T) {
	l := newLeader(t, t.TempDir())
	l.mutate(t, 0)
	// Cuts chosen to land inside frames: a frame is 8 header bytes plus
	// payload, so +3 / +5 / +13 from any record boundary split a record.
	src := &cutSource{Source: StoreSource{St: l.st}, walCuts: []int{3, 5, 13, 0, 21, 1}}
	r := startReplica(t, src, Config{})
	waitCaughtUp(t, r, l.st)

	for deadline := time.Now().Add(5 * time.Second); src.remainingWALCuts() > 0; {
		if time.Now().After(deadline) {
			t.Fatalf("%d WAL cuts never consumed", src.remainingWALCuts())
		}
		l.mutate(t, 5)
		waitCaughtUp(t, r, l.st)
	}
	l.mutate(t, 9)
	waitCaughtUp(t, r, l.st)

	st := r.Status()
	if st.Resyncs != 0 {
		t.Fatalf("torn WAL reads forced %d resyncs; they must resume from offset instead", st.Resyncs)
	}
	graphsIdentical(t, l.fx.Index().G, replicaGraph(r))
}

// TestDirSourceFollowsLeaderDir: the same-host deployment — a replica
// following the leader's persistence directory through the filesystem —
// bootstraps, tails, and resyncs across a generation bump.
func TestDirSourceFollowsLeaderDir(t *testing.T) {
	dir := t.TempDir()
	l := newLeader(t, dir)
	r := startReplica(t, DirSource{Dir: dir}, Config{})
	l.mutate(t, 0)
	waitCaughtUp(t, r, l.st)
	graphsIdentical(t, l.fx.Index().G, replicaGraph(r))

	// Leader restarts with a generation bump mid-tail: the old WAL file
	// disappears from the directory and the replica must resync.
	if err := l.fx.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l.mutate(t, 4)
	waitCaughtUp(t, r, l.st)
	if st := r.Status(); st.Resyncs == 0 {
		t.Fatalf("directory generation bump did not force a resync: %+v", st)
	}
	graphsIdentical(t, l.fx.Index().G, replicaGraph(r))
}
