package replica

import (
	"context"
	"errors"
	"sort"
	"sync"

	"ngfix/internal/graph"
	"ngfix/internal/shard"
)

// Set is one replica per shard — the whole-index follower a replica-only
// server runs, and the bundle a leader hands its Group for failover. The
// shard↔global id arithmetic is the same Router the leader uses, so a
// global id returned by a replica search means the same vector it means
// on the leader.
type Set struct {
	router shard.Router
	reps   []*Replica
}

// NewSet wraps one replica per shard, in shard order.
func NewSet(reps []*Replica) (*Set, error) {
	if len(reps) == 0 {
		return nil, errors.New("replica: set needs at least one replica")
	}
	for i, r := range reps {
		if r == nil {
			return nil, errors.New("replica: nil replica in set")
		}
		if r.cfg.Shard != i {
			return nil, errors.New("replica: set must be in shard order")
		}
	}
	return &Set{router: shard.NewRouter(len(reps)), reps: reps}, nil
}

// Shards returns the shard count.
func (s *Set) Shards() int { return len(s.reps) }

// Replica returns shard i's replica.
func (s *Set) Replica(i int) *Replica { return s.reps[i] }

// Run drives every replica's tail loop until ctx ends. Blocks until all
// loops exit.
func (s *Set) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range s.reps {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			r.Run(ctx)
		}(r)
	}
	wg.Wait()
}

// Ready reports whether every shard's replica can serve.
func (s *Set) Ready() bool {
	for _, r := range s.reps {
		if !r.Ready() {
			return false
		}
	}
	return true
}

// Dim returns the followed index's dimensionality: the first
// bootstrapped replica's (all shards share one vector space), or 0 when
// none has bootstrapped yet.
func (s *Set) Dim() int {
	for _, r := range s.reps {
		if d := r.Dim(); d > 0 {
			return d
		}
	}
	return 0
}

// Statuses returns every replica's status, in shard order.
func (s *Set) Statuses() []Status {
	out := make([]Status, len(s.reps))
	for i, r := range s.reps {
		out[i] = r.Status()
	}
	return out
}

// SearchCtx scatters a query across all shard replicas and gathers a
// global top-k — the read path of a replica-only follower server. Shards
// whose replica has not bootstrapped yet are skipped (their vectors are
// simply absent from the answer, reported via Stats.Truncated), because a
// follower's job is to keep answering with what it has.
func (s *Set) SearchCtx(ctx context.Context, q []float32, k, ef int) ([]graph.Result, graph.Stats) {
	n := len(s.reps)
	if n == 1 {
		res, st, ok := s.reps[0].SearchCtx(ctx, q, k, ef)
		if !ok {
			st.Truncated = true
		}
		return res, st
	}
	type hit struct {
		shard int
		res   []graph.Result
		st    graph.Stats
		ok    bool
	}
	hits := make(chan hit, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res, st, ok := s.reps[i].SearchCtx(ctx, q, k, ef)
			hits <- hit{shard: i, res: res, st: st, ok: ok}
		}(i)
	}
	var (
		merged []graph.Result
		stats  graph.Stats
	)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	for received := 0; received < n; received++ {
		select {
		case h := <-hits:
			if !h.ok {
				stats.Truncated = true
				continue
			}
			for _, r := range h.res {
				merged = append(merged, graph.Result{ID: s.router.Global(h.shard, r.ID), Dist: r.Dist})
			}
			stats.NDC += h.st.NDC
			stats.Hops += h.st.Hops
			stats.Truncated = stats.Truncated || h.st.Truncated
		case <-done:
			stats.Truncated = true
			received = n
		}
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].Dist != merged[j].Dist {
			return merged[i].Dist < merged[j].Dist
		}
		return merged[i].ID < merged[j].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, stats
}
