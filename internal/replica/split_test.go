package replica

import (
	"testing"
	"time"

	"ngfix/internal/persist"
	"ngfix/internal/shard"
)

// startChild starts a splitting child of a single-shard leader: child
// index c ∈ {0, 1} of the 1→2 split, journaling into its own store.
func startChild(t *testing.T, l *leader, c int, cst *persist.Store) *Replica {
	t.Helper()
	var thrRows int
	return startReplica(t, StoreSource{St: l.st}, Config{
		Shard:   c,
		Filter:  shard.NewRouter(1).SplitFilter(0, c),
		Journal: cst,
		Throttle: func(rows int) func() {
			thrRows += rows
			return func() {}
		},
	})
}

// waitChildrenCaughtUp waits until both children have applied the
// leader's full WAL.
func waitChildrenCaughtUp(t *testing.T, l *leader, kids ...*Replica) {
	t.Helper()
	for _, r := range kids {
		waitCaughtUp(t, r, l.st)
	}
}

// TestSplitChildrenPartitionLeader: two filtered children together hold
// exactly the leader's rows — each parent id in exactly one child, at
// the doubled router's translation, same vector, same tombstone — across
// bootstrap and live tailing of all three op kinds.
func TestSplitChildrenPartitionLeader(t *testing.T) {
	l := newLeader(t, t.TempDir())
	st0, err := persist.Open(t.TempDir(), persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st0.Close()
	st1, err := persist.Open(t.TempDir(), persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()

	k0 := startChild(t, l, 0, st0)
	k1 := startChild(t, l, 1, st1)
	waitChildrenCaughtUp(t, l, k0, k1)

	// Live mutations while the children tail: inserts, a delete, and a
	// fix batch (which children must skip, not choke on).
	l.mutate(t, 7)
	l.mutate(t, 19)
	waitChildrenCaughtUp(t, l, k0, k1)

	pg := l.fx.Index().G
	r2 := shard.NewRouter(2)
	g0, g1 := replicaGraph(k0), replicaGraph(k1)
	kids := []*struct{ seen int }{{}, {}}
	for pl := 0; pl < pg.Len(); pl++ {
		g := uint32(pl) // one parent shard: global id == parent-local id
		c := r2.ShardOf(g)
		cl := r2.Local(g)
		cg := g0
		if c == 1 {
			cg = g1
		}
		if int(cl) >= cg.Len() {
			t.Fatalf("parent id %d missing from child %d (len %d, want local %d)", g, c, cg.Len(), cl)
		}
		want, got := pg.Vectors.Row(pl), cg.Vectors.Row(int(cl))
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("parent id %d: vector differs in child %d local %d", g, c, cl)
			}
		}
		if pg.IsDeleted(g) != cg.IsDeleted(cl) {
			t.Fatalf("parent id %d: tombstone differs in child %d", g, c)
		}
		kids[c].seen++
	}
	if kids[0].seen != g0.Len() || kids[1].seen != g1.Len() {
		t.Fatalf("children hold extra rows: %d/%d seen, %d/%d held",
			kids[0].seen, kids[1].seen, g0.Len(), g1.Len())
	}
	// Fix batches were tailed and skipped, not applied.
	s0 := k0.Status()
	if s0.Discarded == 0 {
		t.Fatal("child 0 discarded nothing — fix ops should be skipped")
	}
	if s0.Kept == 0 {
		t.Fatal("child 0 kept nothing from the tail")
	}
}

// TestSplitChildJournalRecovery: a child's journal (sealed snapshot +
// translated tail ops) replays to a graph identical to the served child
// — the property cutover and every later restart rely on.
func TestSplitChildJournalRecovery(t *testing.T) {
	l := newLeader(t, t.TempDir())
	dir0 := t.TempDir()
	st0, err := persist.Open(dir0, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	k0 := startChild(t, l, 0, st0)
	waitCaughtUp(t, k0, l.st)
	l.mutate(t, 3)
	waitCaughtUp(t, k0, l.st)

	// Stop the tail loop before touching the index or the store.
	time.Sleep(5 * time.Millisecond)
	served := replicaGraph(k0)
	st0.Close()

	re, err := persist.Open(dir0, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	ixs, _, err := shard.Recover([]*persist.Store{re}, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	graphsIdentical(t, served, ixs[0].G)
}
