package replica

import (
	"ngfix/internal/obs"
)

// RegisterMetrics exports the replica's state on reg — the shard's
// registry, so every family picks up the shard="<i>" constant label and
// folds across shards at /metrics. All series are Func-backed reads of
// the replica's own counters, so /metrics and /v1/stats never disagree.
func (r *Replica) RegisterMetrics(reg *obs.Registry) {
	reg.GaugeFunc("ngfix_replica_ready",
		"Whether the shard's replica can stand in for its primary (1 = ready).",
		func() float64 {
			if r.Ready() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("ngfix_replica_lag_generations",
		"Snapshot generations the replica is behind the leader (>0 means a resync is due).",
		func() float64 { return float64(r.Lag().Generations) })
	reg.GaugeFunc("ngfix_replica_lag_bytes",
		"WAL bytes the replica has not yet applied.",
		func() float64 { return float64(r.Lag().Bytes) })
	reg.GaugeFunc("ngfix_replica_lag_records",
		"WAL records the replica has not yet applied.",
		func() float64 { return float64(r.Lag().Records) })
	reg.GaugeFunc("ngfix_replica_generation",
		"Snapshot generation the replica's served index came from.",
		func() float64 { return float64(r.gen.Load()) })
	reg.CounterFunc("ngfix_replica_applied_records_total",
		"Op-log records the replica has applied over its lifetime (across resyncs).",
		func() float64 { return float64(r.applied.Load()) })
	reg.CounterFunc("ngfix_replica_tail_errors_total",
		"Errors hit while shipping snapshots or tailing the WAL (each retried with backoff).",
		func() float64 { return float64(r.tailErrs.Load()) })
	reg.CounterFunc("ngfix_replica_resyncs_total",
		"Full re-bootstraps forced by the tailed generation disappearing under the replica.",
		func() float64 { return float64(r.resyncs.Load()) })
	reg.CounterFunc("ngfix_replica_failovers_total",
		"Searches served by this replica because the primary could not answer.",
		func() float64 { return float64(r.failovers.Load()) })
}
