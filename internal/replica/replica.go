// Package replica keeps a read-only follower of one shard warm enough to
// serve that shard's searches when the leader cannot.
//
// A Replica bootstraps from the leader's newest checksummed snapshot,
// then tails the leader's op-log WAL, applying inserts, deletes, and
// fix-batch edge updates through the same deterministic replay primitive
// crash recovery uses (shard.ApplyOp) — so a caught-up replica's graph is
// bit-identical to what the leader persisted, with no second fixer run
// and no divergent repair decisions (see DESIGN.md).
//
// The follower is pull-based and stateless on the wire: every tail poll
// re-opens the WAL at the byte offset just past the last record it
// applied. A torn record at the stream's end is the normal shape of a log
// still being written (or a transfer cut mid-ship) and simply ends the
// poll; the next poll resumes at the same boundary. When the leader seals
// a new generation its old WAL disappears, the source answers
// ErrGenerationGone, and the replica resyncs: it builds a fresh index
// from the new snapshot off to the side and swaps it in atomically, so
// searches always see either the old consistent state or the new one —
// never a mix.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"ngfix/internal/core"
	"ngfix/internal/graph"
	"ngfix/internal/persist"
	"ngfix/internal/shard"
	"ngfix/internal/vec"
	"ngfix/internal/xrand"
)

// Config parameterizes a Replica.
type Config struct {
	// Shard is the shard index this replica follows (labels logs and
	// metrics; the Source already points at one shard's state).
	Shard int
	// Opts are the index options used when materializing snapshots. They
	// must match the leader's so replayed inserts make identical edge
	// choices. PreserveEntry is forced: the replica searches from the
	// entry point the snapshot was sealed with.
	Opts core.Options
	// Poll is the WAL tail cadence when the previous poll found no new
	// records (default 100ms). Polls that found records loop immediately.
	Poll time.Duration
	// Backoff is the base retry delay after a source error (default
	// 500ms), doubling per consecutive failure with jitter.
	Backoff time.Duration
	// LagMax, when positive, is the most WAL bytes the replica may be
	// behind and still report Ready for failover. Zero means any
	// bootstrapped replica is eligible — staleness costs freshness, not
	// availability.
	LagMax int64
	// Logf (nil to discard) receives bootstrap/resync/error lines.
	Logf func(format string, args ...interface{})

	// Filter, when set, turns this replica into a *splitting child*: of
	// the parent's rows, only parent-local ids the filter keeps are
	// materialized, re-numbered to the returned child-local id. The
	// filter must keep a dense prefix-free pattern whose kept ids
	// translate to exactly 0,1,2,… in parent-local order (the Router's
	// SplitFilter guarantees this), because the child is rebuilt by plain
	// insertion. Fix-edge records are skipped under a filter — parent
	// edge ids are meaningless in the child's id space; the child's own
	// fixers rebuild its extra edges after cutover.
	Filter func(parentLocal uint32) (childLocal uint32, ok bool)
	// Journal, when set, persists the child as it builds: the filtered
	// bootstrap seals a snapshot, and every applied (translated) tail op
	// is appended — so the child's store replays to exactly the served
	// index through the same ApplyOp recovery path the leader uses. A
	// journal failure flips the replica back to not-ready and the next
	// loop re-bootstraps (the fresh snapshot seals a new generation,
	// superseding the torn log).
	Journal Journal
	// Throttle, when set, is acquired around each chunk of streamed or
	// tailed work (reshard wires admission costing here so a split can
	// never starve search). The returned release is called when the
	// chunk's work is done.
	Throttle func(rows int) (release func())
}

// Journal persists a splitting child's state; *persist.Store satisfies
// it.
type Journal interface {
	Snapshot(g *graph.Graph) error
	Append(op persist.Op) error
}

// Replica follows one shard. Create with New, drive with Run, read with
// SearchCtx. All methods are safe for concurrent use.
type Replica struct {
	src Source
	cfg Config

	mu        sync.RWMutex // guards ix and searchers; Run swaps, readers search
	ix        *core.Index
	searchers sync.Pool

	// Position: the generation the served index came from and how much
	// of its WAL has been applied.
	gen            atomic.Uint64
	appliedBytes   atomic.Int64
	appliedRecords atomic.Int64

	// Last observed leader position, for lag gauges.
	leaderGen     atomic.Uint64
	leaderBytes   atomic.Int64
	leaderRecords atomic.Int64

	ready     atomic.Bool // first bootstrap completed
	tailErrs  atomic.Int64
	resyncs   atomic.Int64
	failovers atomic.Int64
	applied   atomic.Int64 // records applied over the replica's lifetime

	// Filtered-child state: parentLen counts the parent rows seen so far
	// (snapshot rows + tailed inserts), which is the parent-local id the
	// next tailed insert will get; kept/discarded count tail records by
	// the filter's verdict.
	parentLen atomic.Int64
	kept      atomic.Int64
	discarded atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

// New builds a replica over src. Run must be started for it to make
// progress.
func New(src Source, cfg Config) *Replica {
	if cfg.Poll <= 0 {
		cfg.Poll = 100 * time.Millisecond
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 500 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	cfg.Opts.PreserveEntry = true
	return &Replica{src: src, cfg: cfg}
}

// Run drives bootstrap and tailing until ctx ends. Source errors are
// retried with exponential backoff; they never abort the loop, because a
// replica that stops retrying is a replica that silently stops being a
// failover target.
func (r *Replica) Run(ctx context.Context) {
	rng := xrand.NewOffset(int64(r.cfg.Shard))
	fails := 0
	for ctx.Err() == nil {
		var err error
		if !r.ready.Load() {
			err = r.bootstrap()
		} else {
			var progressed bool
			progressed, err = r.tailOnce()
			if err == nil && progressed {
				fails = 0
				continue // drain hot: more records may already be waiting
			}
		}
		switch {
		case err == nil:
			fails = 0
			sleepCtx(ctx, r.cfg.Poll)
		case errors.Is(err, persist.ErrGenerationGone):
			// The generation we were tailing is gone: resync from the
			// leader's current snapshot. The old index keeps serving until
			// the swap, so the gap costs freshness only.
			r.resyncs.Add(1)
			r.cfg.Logf("shard %d replica: generation %d gone, resyncing from current snapshot", r.cfg.Shard, r.gen.Load())
			if berr := r.bootstrap(); berr != nil {
				r.noteErr(berr)
				fails++
				sleepCtx(ctx, core.BackoffDelay(r.cfg.Backoff, fails, rng.Float64()))
			} else {
				fails = 0
			}
		default:
			r.noteErr(err)
			fails++
			sleepCtx(ctx, core.BackoffDelay(r.cfg.Backoff, fails, rng.Float64()))
		}
	}
}

func (r *Replica) noteErr(err error) {
	r.tailErrs.Add(1)
	r.errMu.Lock()
	r.lastErr = err.Error()
	r.errMu.Unlock()
	r.cfg.Logf("shard %d replica: %v", r.cfg.Shard, err)
}

// bootstrap ships the leader's newest snapshot and swaps it in whole.
// The new index is built entirely off to the side; until the final swap
// the previous index (if any) serves unchanged.
func (r *Replica) bootstrap() error {
	gen, rc, err := r.src.Snapshot()
	if err != nil {
		return fmt.Errorf("ship snapshot: %w", err)
	}
	g, err := persist.DecodeSnapshot(rc)
	rc.Close()
	if err != nil {
		return fmt.Errorf("decode snapshot: %w", err)
	}
	var ix *core.Index
	if r.cfg.Filter != nil {
		ix, err = r.buildFiltered(g)
		if err != nil {
			return err
		}
	} else {
		ix = core.New(g, r.cfg.Opts)
	}

	r.mu.Lock()
	r.ix = ix
	r.searchers = sync.Pool{New: func() interface{} { return graph.NewSearcher(ix.G) }}
	r.gen.Store(gen)
	r.appliedBytes.Store(0)
	r.appliedRecords.Store(0)
	r.mu.Unlock()
	r.ready.Store(true)
	r.cfg.Logf("shard %d replica: bootstrapped at generation %d (%d parent vectors)", r.cfg.Shard, gen, g.Len())
	return nil
}

// buildFiltered materializes the child index from a parent snapshot:
// kept rows are re-inserted in parent-local order (the filter's density
// guarantee means the child's own insert sequence assigns exactly the
// filter's child-local ids), kept tombstones are inserted then deleted so
// the id alignment survives, and — when a journal is wired — the result
// is sealed as the child's first snapshot generation.
func (r *Replica) buildFiltered(pg *graph.Graph) (*core.Index, error) {
	const chunk = 256
	cg := graph.New(vec.NewMatrix(0, pg.Dim()), pg.Metric)
	ix := core.New(cg, r.cfg.Opts)
	for lo := 0; lo < pg.Len(); lo += chunk {
		hi := lo + chunk
		if hi > pg.Len() {
			hi = pg.Len()
		}
		release := r.throttle(hi - lo)
		for pl := lo; pl < hi; pl++ {
			cl, ok := r.cfg.Filter(uint32(pl))
			if !ok {
				r.discarded.Add(1)
				continue
			}
			r.kept.Add(1)
			got := ix.Insert(pg.Vectors.Row(pl))
			if got != cl {
				release()
				return nil, fmt.Errorf("shard %d split: parent-local %d materialized as child-local %d, filter says %d (filter not dense?)", r.cfg.Shard, pl, got, cl)
			}
			if pg.IsDeleted(uint32(pl)) {
				ix.Delete(cl)
			}
		}
		release()
	}
	if r.cfg.Journal != nil {
		if err := r.cfg.Journal.Snapshot(ix.G); err != nil {
			return nil, fmt.Errorf("seal child snapshot: %w", err)
		}
	}
	r.parentLen.Store(int64(pg.Len()))
	return ix, nil
}

// throttle acquires the configured admission throttle (identity when
// unset).
func (r *Replica) throttle(rows int) (release func()) {
	if r.cfg.Throttle == nil {
		return func() {}
	}
	return r.cfg.Throttle(rows)
}

// tailOnce polls the leader's position, then applies every intact record
// past the applied offset. It reports whether any record was applied.
func (r *Replica) tailOnce() (bool, error) {
	if st, err := r.src.Status(); err == nil {
		r.leaderGen.Store(st.Generation)
		r.leaderBytes.Store(st.WALBytes)
		r.leaderRecords.Store(int64(st.WALRecords))
	}
	gen := r.gen.Load()
	off := r.appliedBytes.Load()
	rc, err := r.src.WAL(gen, off)
	if err != nil {
		return false, err
	}
	defer rc.Close()
	sc := persist.NewLogScanner(rc, off)
	n := 0
	release := r.throttle(1)
	defer release()
	for sc.Next() {
		op := sc.Op()
		apply := true
		if r.cfg.Filter != nil {
			op, apply = r.translateOp(op)
		}
		if apply {
			if r.cfg.Journal != nil {
				if jerr := r.cfg.Journal.Append(op); jerr != nil {
					// The child's log is now behind its served index; the
					// only consistent recovery is a fresh bootstrap, whose
					// snapshot seals a new generation past the torn log.
					r.ready.Store(false)
					return n > 0, fmt.Errorf("journal op at offset %d: %w", sc.Offset(), jerr)
				}
			}
			r.mu.Lock()
			err := shard.ApplyOp(r.ix, op)
			r.mu.Unlock()
			if err != nil {
				// A record that checksummed but cannot apply means this replica
				// diverged from the leader's sequence; only a resync recovers.
				if r.cfg.Journal != nil {
					r.ready.Store(false)
				}
				return n > 0, fmt.Errorf("apply op at offset %d: %w", sc.Offset(), err)
			}
		}
		r.appliedBytes.Store(sc.Offset())
		r.appliedRecords.Add(1)
		r.applied.Add(1)
		n++
	}
	if sc.Err() != nil {
		return n > 0, fmt.Errorf("scan WAL: %w", sc.Err())
	}
	return n > 0, nil
}

// translateOp maps a parent op into the child's id space under the
// configured filter. apply=false means the record belongs to the other
// child (or is a fix-edge record, whose parent edge ids are meaningless
// here) and only advances the applied position.
func (r *Replica) translateOp(op persist.Op) (persist.Op, bool) {
	switch op.Kind {
	case persist.OpInsert:
		// An insert's parent-local id is positional: the number of parent
		// rows seen before it. The child op carries no id — replaying it
		// inserts at the child's next id, which the density invariant
		// guarantees is the filter's translation.
		pl := uint32(r.parentLen.Add(1) - 1)
		if _, ok := r.cfg.Filter(pl); !ok {
			r.discarded.Add(1)
			return op, false
		}
		r.kept.Add(1)
		return persist.Op{Kind: persist.OpInsert, Vector: op.Vector}, true
	case persist.OpDelete:
		cl, ok := r.cfg.Filter(op.ID)
		if !ok {
			r.discarded.Add(1)
			return op, false
		}
		r.kept.Add(1)
		return persist.Op{Kind: persist.OpDelete, ID: cl}, true
	default:
		// Fix-edge batches repair the parent's adjacency; the child
		// rebuilds its own after cutover.
		r.discarded.Add(1)
		return op, false
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// SearchCtx serves one read-only query from the replica's current index.
// ok is false when the replica has not bootstrapped yet. Queries are
// never recorded for fixing — repair decisions belong to the leader.
func (r *Replica) SearchCtx(ctx context.Context, q []float32, k, ef int) ([]graph.Result, graph.Stats, bool) {
	if !r.ready.Load() {
		return nil, graph.Stats{}, false
	}
	r.mu.RLock()
	s := r.searchers.Get().(*graph.Searcher)
	res, st := s.SearchFromCtx(ctx, q, k, ef, r.ix.G.EntryPoint)
	r.searchers.Put(s)
	r.mu.RUnlock()
	return res, st, true
}

// Ready reports whether the replica can stand in for its shard: it has
// bootstrapped, and (when LagMax is set) is within the configured lag.
func (r *Replica) Ready() bool {
	if !r.ready.Load() {
		return false
	}
	if r.cfg.LagMax > 0 {
		if lag := r.Lag(); lag.Bytes > r.cfg.LagMax || lag.Generations > 0 {
			return false
		}
	}
	return true
}

// NoteFailover records that a search was served from this replica
// because the primary could not answer.
func (r *Replica) NoteFailover() { r.failovers.Add(1) }

// Lag measures how far behind the leader's last observed position this
// replica is. Bytes and Records compare WAL positions and are only
// meaningful within a generation; a positive Generations means the
// replica has not yet resynced to the leader's latest snapshot (its WAL
// counters then measure against a log it is no longer reading).
type Lag struct {
	Generations uint64 `json:"generations"`
	Bytes       int64  `json:"bytes"`
	Records     int64  `json:"records"`
}

// Lag returns the replica's current lag against the leader.
func (r *Replica) Lag() Lag {
	var l Lag
	lg, g := r.leaderGen.Load(), r.gen.Load()
	if lg > g {
		l.Generations = lg - g
	}
	if l.Generations == 0 {
		if b := r.leaderBytes.Load() - r.appliedBytes.Load(); b > 0 {
			l.Bytes = b
		}
		if n := r.leaderRecords.Load() - r.appliedRecords.Load(); n > 0 {
			l.Records = n
		}
	} else {
		// Across a generation gap the leader's whole current log is
		// unapplied from the replica's point of view.
		l.Bytes = r.leaderBytes.Load()
		l.Records = r.leaderRecords.Load()
	}
	return l
}

// Status is a point-in-time summary for /v1/stats and logs.
type Status struct {
	Shard          int    `json:"shard"`
	Ready          bool   `json:"ready"`
	Generation     uint64 `json:"generation"`
	AppliedRecords int64  `json:"appliedRecords"`
	AppliedBytes   int64  `json:"appliedBytes"`
	Lag            Lag    `json:"lag"`
	TailErrors     int64  `json:"tailErrors,omitempty"`
	Resyncs        int64  `json:"resyncs,omitempty"`
	Failovers      int64  `json:"failovers,omitempty"`
	LastError      string `json:"lastError,omitempty"`
	// Kept/Discarded count rows and records by a split filter's verdict,
	// across bootstrap and tail (zero on ordinary replicas).
	Kept      int64 `json:"kept,omitempty"`
	Discarded int64 `json:"discarded,omitempty"`
}

// Status returns the replica's current state.
func (r *Replica) Status() Status {
	r.errMu.Lock()
	lastErr := r.lastErr
	r.errMu.Unlock()
	return Status{
		Shard:          r.cfg.Shard,
		Ready:          r.Ready(),
		Generation:     r.gen.Load(),
		AppliedRecords: r.appliedRecords.Load(),
		AppliedBytes:   r.appliedBytes.Load(),
		Lag:            r.Lag(),
		TailErrors:     r.tailErrs.Load(),
		Resyncs:        r.resyncs.Load(),
		Failovers:      r.failovers.Load(),
		LastError:      lastErr,
		Kept:           r.kept.Load(),
		Discarded:      r.discarded.Load(),
	}
}

// DetachIndex hands the built index to the caller — the reshard cutover
// takes a caught-up child's index and promotes it to a serving shard.
// Call only after Run has stopped; the replica must not apply further
// ops to a detached index.
func (r *Replica) DetachIndex() *core.Index {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ix
}

// Generation returns the snapshot generation the served index came from
// (0 before bootstrap).
func (r *Replica) Generation() uint64 { return r.gen.Load() }

// Dim returns the served index's dimensionality (0 before bootstrap) —
// what a follower server validates query vectors against.
func (r *Replica) Dim() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.ix == nil {
		return 0
	}
	return r.ix.G.Dim()
}

func decodeJSON(rd io.Reader, v interface{}) error { return json.NewDecoder(rd).Decode(v) }
