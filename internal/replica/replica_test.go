package replica

import (
	"context"
	"testing"
	"time"

	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/persist"
	"ngfix/internal/shard"
	"ngfix/internal/vec"
)

var testOpts = core.Options{Rounds: []core.Round{{K: 10}}, LEx: 24}

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Config{
		Name: "replica", N: 400, NHist: 80, NTest: 30,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 13,
	})
}

// leader is a single-shard primary: fixer over a persisted store with an
// initial sealed generation, the state a serving shard starts from.
type leader struct {
	st *persist.Store
	fx *core.OnlineFixer
	d  *dataset.Dataset
}

func newLeader(t *testing.T, dir string) *leader {
	t.Helper()
	d := testData(t)
	st, err := persist.Open(dir, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	h := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
	ix := core.New(h.Bottom(), testOpts)
	fx := core.NewOnlineFixer(ix, core.OnlineConfig{BatchSize: 1 << 20, WAL: st})
	if err := fx.Snapshot(); err != nil {
		t.Fatal(err)
	}
	return &leader{st: st, fx: fx, d: d}
}

// mutate drives journaled work through the leader: inserts, a delete,
// and a fix batch over recorded queries — one of every op-log record
// kind.
func (l *leader) mutate(t *testing.T, seed int) {
	t.Helper()
	for i := 0; i < 5; i++ {
		if _, err := l.fx.InsertChecked(l.d.History.Row((seed + i) % l.d.History.Rows())); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.fx.DeleteChecked(uint32(seed % 50)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		l.fx.Search(l.d.TestOOD.Row((seed+i)%l.d.TestOOD.Rows()), 10, 40)
	}
	if _, err := l.fx.FixPendingChecked(); err != nil {
		t.Fatal(err)
	}
}

func startReplica(t *testing.T, src Source, cfg Config) *Replica {
	t.Helper()
	cfg.Opts = testOpts
	if cfg.Poll == 0 {
		cfg.Poll = 2 * time.Millisecond
	}
	if cfg.Backoff == 0 {
		cfg.Backoff = time.Millisecond
	}
	cfg.Logf = t.Logf
	r := New(src, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); r.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return r
}

// waitCaughtUp blocks until the replica's position equals the leader's.
func waitCaughtUp(t *testing.T, r *Replica, st *persist.Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ls := st.ReplicationStatus()
		if r.ready.Load() && r.gen.Load() == ls.Generation && r.appliedBytes.Load() == ls.WALBytes {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("replica never caught up: replica %+v, leader %+v", r.Status(), st.ReplicationStatus())
}

// replicaGraph returns the replica's live graph for comparison. Callers
// must have stopped the tail loop (or know it is idle) first.
func replicaGraph(r *Replica) *graph.Graph {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ix.G
}

// graphsIdentical asserts structural equality: same vectors, edges,
// tombstones, entry point. This is the replication contract — replaying
// the leader's op sequence on the leader's snapshot reproduces the
// leader's graph exactly, not approximately.
func graphsIdentical(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.Len() != got.Len() || want.Dim() != got.Dim() || want.Metric != got.Metric {
		t.Fatalf("shape mismatch: %dx%d/%v vs %dx%d/%v",
			want.Len(), want.Dim(), want.Metric, got.Len(), got.Dim(), got.Metric)
	}
	if want.EntryPoint != got.EntryPoint {
		t.Fatalf("entry point %d != %d", got.EntryPoint, want.EntryPoint)
	}
	for i, v := range want.Vectors.Data() {
		if got.Vectors.Data()[i] != v {
			t.Fatalf("vector data differs at %d", i)
		}
	}
	for u := 0; u < want.Len(); u++ {
		uu := uint32(u)
		if want.IsDeleted(uu) != got.IsDeleted(uu) {
			t.Fatalf("vertex %d tombstone differs", u)
		}
		wb, gb := want.BaseNeighbors(uu), got.BaseNeighbors(uu)
		if len(wb) != len(gb) {
			t.Fatalf("vertex %d base degree %d != %d", u, len(gb), len(wb))
		}
		for i := range wb {
			if wb[i] != gb[i] {
				t.Fatalf("vertex %d base edge %d: %d != %d", u, i, gb[i], wb[i])
			}
		}
		we, ge := want.ExtraNeighbors(uu), got.ExtraNeighbors(uu)
		if len(we) != len(ge) {
			t.Fatalf("vertex %d extra degree %d != %d", u, len(ge), len(we))
		}
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("vertex %d extra edge %d: %+v != %+v", u, i, ge[i], we[i])
			}
		}
	}
}

// TestBootstrapAndTail is the happy path: snapshot shipping, then WAL
// tailing across all three record kinds, converging to a graph
// bit-identical to the leader's.
func TestBootstrapAndTail(t *testing.T) {
	l := newLeader(t, t.TempDir())
	r := startReplica(t, StoreSource{St: l.st}, Config{})
	waitCaughtUp(t, r, l.st)

	if res, _, ok := r.SearchCtx(nil, l.d.TestOOD.Row(0), 10, 40); !ok || len(res) == 0 {
		t.Fatalf("bootstrapped replica cannot search: ok=%v res=%d", ok, len(res))
	}

	l.mutate(t, 0)
	l.mutate(t, 7)
	waitCaughtUp(t, r, l.st)
	graphsIdentical(t, l.fx.Index().G, replicaGraph(r))

	st := r.Status()
	if st.Resyncs != 0 {
		t.Fatalf("tail-only catch-up resynced %d times", st.Resyncs)
	}
	if st.AppliedRecords == 0 {
		t.Fatal("no records applied")
	}
	if lag := r.Lag(); lag.Bytes != 0 || lag.Records != 0 || lag.Generations != 0 {
		t.Fatalf("caught-up replica reports lag %+v", lag)
	}
}

// TestResyncOnGenerationBump: the leader seals a new generation mid-tail
// (deleting the WAL the replica was following). The replica must detect
// the gap, re-bootstrap from the new snapshot, and converge — and must
// keep serving its old consistent state while it does.
func TestResyncOnGenerationBump(t *testing.T) {
	l := newLeader(t, t.TempDir())
	r := startReplica(t, StoreSource{St: l.st}, Config{})
	l.mutate(t, 0)
	waitCaughtUp(t, r, l.st)

	// A reader hammering the replica across the bump: every answer must
	// come from a complete index (ok once ready never regresses).
	stop := make(chan struct{})
	searchDone := make(chan error, 1)
	go func() {
		defer close(searchDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, ok := r.SearchCtx(nil, l.d.TestOOD.Row(1), 5, 30); !ok {
				searchDone <- nil
				return
			}
		}
	}()

	// Generation bump with fresh mutations behind it.
	if err := l.fx.Snapshot(); err != nil {
		t.Fatal(err)
	}
	l.mutate(t, 3)
	waitCaughtUp(t, r, l.st)
	close(stop)
	if _, open := <-searchDone; open {
		t.Fatal("replica refused a search during resync — availability regressed")
	}

	if got := r.Status(); got.Resyncs == 0 {
		t.Fatalf("generation bump did not force a resync: %+v", got)
	}
	if r.Generation() != l.st.Generation() {
		t.Fatalf("replica at generation %d, leader at %d", r.Generation(), l.st.Generation())
	}
	graphsIdentical(t, l.fx.Index().G, replicaGraph(r))
}

// TestSetScatterMatchesGroup: a whole-index follower (one replica per
// shard) must answer exactly like the leader group once caught up —
// same global ids, same order.
func TestSetScatterMatchesGroup(t *testing.T) {
	d := testData(t)
	const n = 2
	root := t.TempDir()
	stores, err := persist.OpenSharded(root, n, persist.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	parts := shard.Partition(d.Base, n)
	fixers := make([]*core.OnlineFixer, n)
	reps := make([]*Replica, n)
	for s, p := range parts {
		h := hnsw.Build(p, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1})
		ix := core.New(h.Bottom(), testOpts)
		fixers[s] = core.NewOnlineFixer(ix, core.OnlineConfig{BatchSize: 1 << 20, WAL: stores[s]})
		if err := fixers[s].Snapshot(); err != nil {
			t.Fatal(err)
		}
		reps[s] = startReplica(t, StoreSource{St: stores[s]}, Config{Shard: s})
	}
	g, err := shard.NewGroup(fixers)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(reps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := g.InsertChecked(d.History.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < n; s++ {
		waitCaughtUp(t, reps[s], stores[s])
	}
	if !set.Ready() {
		t.Fatal("caught-up set not ready")
	}
	for qi := 0; qi < d.TestOOD.Rows(); qi++ {
		q := d.TestOOD.Row(qi)
		want, _ := g.SearchCtx(nil, q, 10, 40, n)
		got, _ := set.SearchCtx(nil, q, 10, 40)
		if len(want) != len(got) {
			t.Fatalf("query %d: %d results vs group's %d", qi, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d result %d: %+v != group's %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestLagMaxGatesReadiness: a replica beyond its configured lag bound
// must report not-ready (it would serve answers staler than the operator
// allows) and recover once it catches back up.
func TestLagMaxGatesReadiness(t *testing.T) {
	l := newLeader(t, t.TempDir())
	// Poll far slower than the test mutates, so lag accumulates.
	r := startReplica(t, StoreSource{St: l.st}, Config{LagMax: 1, Poll: time.Hour})
	deadline := time.Now().Add(5 * time.Second)
	for !r.ready.Load() {
		if time.Now().After(deadline) {
			t.Fatal("replica never bootstrapped")
		}
		time.Sleep(time.Millisecond)
	}
	l.mutate(t, 0)
	// Force the lag view current without waiting out the poll.
	st, err := r.src.Status()
	if err != nil {
		t.Fatal(err)
	}
	r.leaderGen.Store(st.Generation)
	r.leaderBytes.Store(st.WALBytes)
	r.leaderRecords.Store(int64(st.WALRecords))
	if r.Ready() {
		t.Fatalf("replica %d bytes behind with LagMax=1 reports ready", r.Lag().Bytes)
	}
	if !r.ready.Load() {
		t.Fatal("lag gating must not un-bootstrap the replica")
	}
}
