package xrand

import "testing"

// Pinning the seed makes every stream reproducible; distinct offsets
// still yield distinct streams (shard loops must not jitter in
// lockstep).
func TestPinDeterminism(t *testing.T) {
	restore := Pin(42)
	defer restore()

	a, b := New(), New()
	for i := 0; i < 16; i++ {
		if av, bv := a.Float64(), b.Float64(); av != bv {
			t.Fatalf("pinned RNGs diverged at draw %d: %v != %v", i, av, bv)
		}
	}

	s0, s1 := NewOffset(0), NewOffset(1)
	same := true
	for i := 0; i < 16; i++ {
		if s0.Float64() != s1.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("offset streams identical: per-shard jitter would synchronize")
	}
}

// Restore hands back the previous seeding behavior, including nested
// pins.
func TestPinRestore(t *testing.T) {
	outer := Pin(7)
	inner := Pin(9)
	if got := pinned.Load(); got != 9 {
		t.Fatalf("inner pin not applied: %d", got)
	}
	inner()
	if got := pinned.Load(); got != 7 {
		t.Fatalf("inner restore lost outer pin: %d", got)
	}
	outer()
	if got := pinned.Load(); got != 0 {
		t.Fatalf("outer restore did not unpin: %d", got)
	}
}

// The zero seed is reserved for "unpinned": pinning it must still pin.
func TestPinZeroSeed(t *testing.T) {
	restore := Pin(0)
	defer restore()
	a, b := New(), New()
	if a.Int63() != b.Int63() {
		t.Fatal("Pin(0) did not pin the seed")
	}
}
