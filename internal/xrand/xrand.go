// Package xrand is the one place the serving stack seeds its jitter
// RNGs. Production code gets the usual time-seeded source; tests pin the
// seed process-wide and turn every staggered start, backoff jitter, and
// fleet stagger deterministic — instead of each package hand-rolling
// rand.New(rand.NewSource(time.Now().UnixNano())) copies that can never
// be reproduced.
//
// These generators drive jitter only (stagger offsets, backoff spread).
// They are not cryptographic and must never gate correctness.
package xrand

import (
	"math/rand"
	"sync/atomic"
	"time"
)

// pinned, when non-zero via Pin, replaces the wall-clock seed. Atomic so
// racing goroutines constructing RNGs during a pinned test stay clean
// under -race.
var pinned atomic.Int64

// New returns a jitter RNG seeded from the wall clock, or from the
// pinned test seed when one is set.
func New() *rand.Rand {
	return NewOffset(0)
}

// NewOffset is New with a caller-chosen offset added to the seed —
// per-shard loops pass their shard index so sibling RNGs constructed in
// the same nanosecond (or under the same pinned seed) still produce
// distinct streams.
func NewOffset(off int64) *rand.Rand {
	seed := pinned.Load()
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return rand.New(rand.NewSource(seed + off))
}

// Pin fixes the seed every subsequent New/NewOffset call uses and
// returns a restore function — tests defer it to hand the wall clock
// back. A zero seed is reserved for "unpinned" and maps to 1.
func Pin(seed int64) (restore func()) {
	if seed == 0 {
		seed = 1
	}
	prev := pinned.Swap(seed)
	return func() { pinned.Store(prev) }
}
