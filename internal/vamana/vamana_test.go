package vamana

import (
	"math/rand"
	"testing"

	"ngfix/internal/bruteforce"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/metrics"
	"ngfix/internal/vec"
)

func randomMatrix(seed int64, n, dim int) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		for j := 0; j < dim; j++ {
			m.Row(i)[j] = float32(rng.NormFloat64())
		}
	}
	return m
}

func TestBuildStructure(t *testing.T) {
	m := randomMatrix(1, 500, 8)
	g := Build(m, Config{R: 12, L: 40, Alpha: 1.2, Metric: vec.L2, Seed: 1})
	if g.Len() != 500 {
		t.Fatalf("Len = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.Len(); u++ {
		if d := len(g.BaseNeighbors(uint32(u))); d > 12+1 {
			t.Fatalf("vertex %d degree %d > R", u, d)
		}
	}
}

func TestSearchAccuracy(t *testing.T) {
	m := randomMatrix(2, 800, 8)
	g := Build(m, Config{R: 16, L: 60, Alpha: 1.2, Metric: vec.L2, Seed: 2})
	queries := randomMatrix(3, 40, 8)
	gt := bruteforce.AllKNN(m, queries, vec.L2, 10)
	s := graph.NewSearcher(g)
	var sum float64
	for qi := 0; qi < 40; qi++ {
		res, _ := s.Search(queries.Row(qi), 10, 80)
		sum += metrics.Recall(graph.IDs(res), bruteforce.IDs(gt[qi]))
	}
	if avg := sum / 40; avg < 0.9 {
		t.Fatalf("Vamana recall@10 = %.3f", avg)
	}
}

func TestRobustPruneAlpha(t *testing.T) {
	m := randomMatrix(4, 60, 4)
	var cands []graph.Candidate
	for i := 1; i < 60; i++ {
		cands = append(cands, graph.Candidate{ID: uint32(i), Dist: vec.L2Squared(m.Row(0), m.Row(i))})
	}
	graph.SortCandidates(cands)
	k1 := RobustPrune(m, vec.L2, cands, 64, 1)
	k15 := RobustPrune(m, vec.L2, cands, 64, 1.5)
	if len(k15) < len(k1) {
		t.Fatalf("alpha=1.5 kept %d < alpha=1 kept %d; larger alpha must keep at least as many",
			len(k15), len(k1))
	}
	// Degree cap respected.
	if got := RobustPrune(m, vec.L2, cands, 3, 1.2); len(got) > 3 {
		t.Fatalf("cap violated: %d", len(got))
	}
}

func TestBuildEmptyAndTiny(t *testing.T) {
	g := Build(vec.NewMatrix(0, 4), DefaultConfig(vec.L2))
	if g.Len() != 0 {
		t.Fatal("empty build")
	}
	g = Build(vec.MatrixFromRows([][]float32{{1, 2}}), DefaultConfig(vec.L2))
	if g.Len() != 1 || len(g.BaseNeighbors(0)) != 0 {
		t.Fatal("singleton build wrong")
	}
}

// RobustVamana: query vertices navigate but are never returned, and they
// must improve OOD recall over plain Vamana at the same budget.
func TestBuildRobustNavigators(t *testing.T) {
	d := dataset.Generate(dataset.Config{
		Name: "vamana-test", N: 700, NHist: 250, NTest: 60,
		Dim: 10, Clusters: 8, Metric: vec.L2,
		GapMagnitude: 1.8, ClusterStd: 0.2, QueryStdScale: 1.6, Seed: 9,
	})
	cfg := Config{R: 16, L: 50, Alpha: 1.2, Metric: vec.L2, Seed: 3}
	plain := Build(d.Base, cfg)
	robust := BuildRobust(d.Base, d.History, cfg)
	if robust.Len() != 700+250 || robust.Live() != 700 {
		t.Fatalf("robust graph sizes: len=%d live=%d", robust.Len(), robust.Live())
	}
	if err := robust.Validate(); err != nil {
		t.Fatal(err)
	}

	gt := bruteforce.AllKNN(d.Base, d.TestOOD, vec.L2, 10)
	recallOf := func(g *graph.Graph) float64 {
		s := graph.NewSearcher(g)
		var sum float64
		for qi := 0; qi < d.TestOOD.Rows(); qi++ {
			res, _ := s.Search(d.TestOOD.Row(qi), 10, 20)
			for _, r := range res {
				if r.ID >= 700 {
					t.Fatal("navigator vertex returned as a result")
				}
			}
			sum += metrics.Recall(graph.IDs(res), bruteforce.IDs(gt[qi]))
		}
		return sum / float64(d.TestOOD.Rows())
	}
	rPlain := recallOf(plain)
	rRobust := recallOf(robust)
	t.Logf("OOD recall@10 (ef=20): Vamana %.3f, RobustVamana %.3f", rPlain, rRobust)
	if rRobust < rPlain-0.02 {
		t.Fatalf("RobustVamana (%.3f) should not be clearly worse than Vamana (%.3f) on OOD",
			rRobust, rPlain)
	}
}
