// Package vamana implements the Vamana graph of DiskANN (Subramanya et
// al., NeurIPS 2019) and its OOD-aware variant RobustVamana (OOD-DiskANN,
// Jaiswal et al. 2022), which the paper discusses as the first attempt at
// query-distribution-aware graph construction: sample queries are inserted
// into the graph as pure *navigators* — traversable but never returned —
// bridging the modality gap at the cost of longer search paths. The
// paper's critique (only small overall improvement) is reproducible here
// against NGFix on the same workloads.
package vamana

import (
	"math/rand"

	"ngfix/internal/graph"
	"ngfix/internal/vec"
)

// Config holds Vamana build parameters.
type Config struct {
	// R is the maximum out-degree.
	R int
	// L is the build-time search list size.
	L int
	// Alpha is the RobustPrune slack; the canonical schedule runs one pass
	// with alpha=1 and a second with this value (typically 1.2).
	Alpha float32
	// Metric is the distance function.
	Metric vec.Metric
	// Seed drives the random initial graph and insertion order.
	Seed int64
}

// DefaultConfig mirrors DiskANN's published parameter shape at this
// repository's scales.
func DefaultConfig(metric vec.Metric) Config {
	return Config{R: 24, L: 60, Alpha: 1.2, Metric: metric, Seed: 11}
}

// Build constructs a Vamana graph over the vectors: a random R-regular
// start, then two RobustPrune passes (alpha = 1, then cfg.Alpha) over a
// random permutation, with degree-capped back-edges.
func Build(vectors *vec.Matrix, cfg Config) *graph.Graph {
	g := graph.New(vectors, cfg.Metric)
	n := vectors.Rows()
	if n == 0 {
		return g
	}
	if cfg.Alpha < 1 {
		cfg.Alpha = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Random initial graph.
	for u := 0; u < n; u++ {
		deg := cfg.R
		if deg > n-1 {
			deg = n - 1
		}
		seen := map[uint32]bool{uint32(u): true}
		for len(g.BaseNeighbors(uint32(u))) < deg {
			v := uint32(rng.Intn(n))
			if !seen[v] {
				seen[v] = true
				g.AddBaseEdge(uint32(u), v)
			}
		}
	}
	g.EntryPoint = g.Medoid()

	order := rng.Perm(n)
	for _, alpha := range []float32{1, cfg.Alpha} {
		pass(g, order, cfg, alpha)
	}
	return g
}

// pass runs one Vamana refinement sweep at the given alpha.
func pass(g *graph.Graph, order []int, cfg Config, alpha float32) {
	s := graph.NewSearcher(g)
	s.CollectVisited = true
	for _, u := range order {
		uu := uint32(u)
		uRow := g.Vectors.Row(u)
		s.SearchFrom(uRow, cfg.L, cfg.L, g.EntryPoint)
		// Candidate pool: the visited set plus current neighbors.
		cands := make([]graph.Candidate, 0, len(s.Visited)+len(g.BaseNeighbors(uu)))
		seen := map[uint32]bool{uu: true}
		for _, v := range s.Visited {
			if !seen[v.ID] {
				seen[v.ID] = true
				cands = append(cands, graph.Candidate{ID: v.ID, Dist: v.Dist})
			}
		}
		for _, w := range g.BaseNeighbors(uu) {
			if !seen[w] {
				seen[w] = true
				cands = append(cands, graph.Candidate{ID: w, Dist: cfg.Metric.Distance(uRow, g.Vectors.Row(int(w)))})
			}
		}
		graph.SortCandidates(cands)
		kept := RobustPrune(g.Vectors, cfg.Metric, cands, cfg.R, alpha)
		nbrs := make([]uint32, len(kept))
		for i, c := range kept {
			nbrs[i] = c.ID
		}
		g.SetBaseNeighbors(uu, nbrs)
		// Back edges with degree-capped re-pruning.
		for _, c := range kept {
			if !g.AddBaseEdge(c.ID, uu) {
				continue
			}
			if len(g.BaseNeighbors(c.ID)) > cfg.R {
				shrink(g, c.ID, cfg, alpha)
			}
		}
	}
}

func shrink(g *graph.Graph, u uint32, cfg Config, alpha float32) {
	uRow := g.Vectors.Row(int(u))
	nbrs := g.BaseNeighbors(u)
	cands := make([]graph.Candidate, len(nbrs))
	for i, w := range nbrs {
		cands[i] = graph.Candidate{ID: w, Dist: cfg.Metric.Distance(uRow, g.Vectors.Row(int(w)))}
	}
	graph.SortCandidates(cands)
	kept := RobustPrune(g.Vectors, cfg.Metric, cands, cfg.R, alpha)
	out := make([]uint32, len(kept))
	for i, c := range kept {
		out[i] = c.ID
	}
	g.SetBaseNeighbors(u, out)
}

// RobustPrune is DiskANN's occlusion rule with slack alpha: scanning
// candidates in ascending distance, c is occluded by a kept neighbor s
// when alpha·dist(s, c) ≤ dist(pivot, c). alpha = 1 reduces to the RNG
// rule; larger alpha keeps longer edges, improving navigability.
func RobustPrune(vectors *vec.Matrix, metric vec.Metric, candidates []graph.Candidate, maxDegree int, alpha float32) []graph.Candidate {
	kept := make([]graph.Candidate, 0, maxDegree)
	for _, c := range candidates {
		if len(kept) >= maxDegree {
			break
		}
		occluded := false
		cRow := vectors.Row(int(c.ID))
		for _, s := range kept {
			if alpha*metric.Distance(vectors.Row(int(s.ID)), cRow) <= c.Dist {
				occluded = true
				break
			}
		}
		if !occluded {
			kept = append(kept, c)
		}
	}
	return kept
}

// BuildRobust constructs a RobustVamana graph: the base vectors plus the
// sample queries are indexed together, and the query vertices are
// tombstoned so they navigate but are never returned (the graph package's
// lazy-delete semantics give exactly that behavior). The returned graph's
// first base.Rows() ids are the base vectors.
func BuildRobust(base, queries *vec.Matrix, cfg Config) *graph.Graph {
	combined := base.Clone()
	for i := 0; i < queries.Rows(); i++ {
		combined.Append(queries.Row(i))
	}
	g := Build(combined, cfg)
	for i := base.Rows(); i < combined.Rows(); i++ {
		g.MarkDeleted(uint32(i))
	}
	return g
}
