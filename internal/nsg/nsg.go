// Package nsg implements the Navigating Spreading-out Graph (Fu et al.,
// VLDB 2019), the MRNG-approximation baseline of the paper. The build
// follows the published recipe: start from a kNN graph, pick the medoid as
// the navigating node, gather per-node candidate pools by beam-searching
// the kNN graph from the navigating node, prune with the MRNG rule, and
// finally repair connectivity with a spanning tree from the navigating
// node.
//
// τ-MNG (Peng et al., SIGMOD 2023 — the title-collision paper, see
// DESIGN.md) shares this entire pipeline with a relaxed pruning rule, so
// the builder takes the pruning rule as a parameter; package taumng wraps
// it.
package nsg

import (
	"ngfix/internal/graph"
	"ngfix/internal/vec"
)

// Config holds NSG build parameters.
type Config struct {
	// R is the max out-degree of the final graph.
	R int
	// L is the beam width used to gather each node's candidate pool.
	L int
	// C caps the candidate pool size before pruning.
	C int
	// Metric is the distance function.
	Metric vec.Metric
	// Tau, when positive, switches the pruning rule from MRNG to the
	// τ-MNG rule with that τ.
	Tau float32
}

// DefaultConfig mirrors the paper's NSG parameter shape at this
// repository's scales.
func DefaultConfig(metric vec.Metric) Config {
	return Config{R: 32, L: 100, C: 300, Metric: metric}
}

// Build constructs an NSG (or τ-MNG when cfg.Tau > 0) over the vectors,
// using the supplied kNN graph as the construction substrate.
func Build(vectors *vec.Matrix, knn *graph.KNNGraph, cfg Config) *graph.Graph {
	n := vectors.Rows()
	g := graph.New(vectors, cfg.Metric)
	if n == 0 {
		return g
	}
	if cfg.C < cfg.L {
		cfg.C = cfg.L
	}

	// Navigating node: medoid of the dataset.
	knnG := knnAsGraph(vectors, knn, cfg.Metric)
	nav := knnG.Medoid()
	knnG.EntryPoint = nav

	searcher := graph.NewSearcher(knnG)
	searcher.CollectVisited = true

	prune := func(cands []graph.Candidate) []graph.Candidate {
		if cfg.Tau > 0 {
			return graph.TauPrune(vectors, cfg.Metric, cands, cfg.R, cfg.Tau)
		}
		return graph.RNGPrune(vectors, cfg.Metric, cands, cfg.R)
	}

	for u := 0; u < n; u++ {
		// Candidate pool: points visited while searching for u from the
		// navigating node, plus u's kNN list (the NSG paper's recipe).
		searcher.SearchFrom(vectors.Row(u), cfg.L, cfg.L, nav)
		pool := make([]graph.Candidate, 0, cfg.C+knn.K)
		seen := make(map[uint32]bool, cfg.C+knn.K)
		for _, v := range searcher.Visited {
			if v.ID != uint32(u) && !seen[v.ID] {
				seen[v.ID] = true
				pool = append(pool, graph.Candidate{ID: v.ID, Dist: v.Dist})
			}
		}
		for _, c := range knn.Neighbors[u] {
			if c.ID != uint32(u) && !seen[c.ID] {
				seen[c.ID] = true
				pool = append(pool, c)
			}
		}
		graph.SortCandidates(pool)
		if len(pool) > cfg.C {
			pool = pool[:cfg.C]
		}
		kept := prune(pool)
		nbrs := make([]uint32, len(kept))
		for i, c := range kept {
			nbrs[i] = c.ID
		}
		g.SetBaseNeighbors(uint32(u), nbrs)
	}

	g.EntryPoint = nav
	graph.EnsureReachable(g, nav, cfg.L)
	return g
}

// knnAsGraph materializes the kNN lists as a directed graph for searching.
func knnAsGraph(vectors *vec.Matrix, knn *graph.KNNGraph, metric vec.Metric) *graph.Graph {
	g := graph.New(vectors, metric)
	for u := range knn.Neighbors {
		nbrs := make([]uint32, len(knn.Neighbors[u]))
		for i, c := range knn.Neighbors[u] {
			nbrs[i] = c.ID
		}
		g.SetBaseNeighbors(uint32(u), nbrs)
	}
	return g
}
