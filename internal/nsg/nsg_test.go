package nsg

import (
	"math/rand"
	"testing"

	"ngfix/internal/bruteforce"
	"ngfix/internal/graph"
	"ngfix/internal/metrics"
	"ngfix/internal/vec"
)

func randomMatrix(seed int64, n, dim int) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, dim)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
	}
	return m
}

func buildSmall(t *testing.T, tau float32) (*vec.Matrix, *graph.Graph) {
	t.Helper()
	m := randomMatrix(1, 500, 8)
	knn := graph.BruteKNNGraph(m, vec.L2, 20)
	g := Build(m, knn, Config{R: 12, L: 40, C: 100, Metric: vec.L2, Tau: tau})
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid NSG: %v", err)
	}
	return m, g
}

func TestBuildStructure(t *testing.T) {
	_, g := buildSmall(t, 0)
	if g.Len() != 500 {
		t.Fatalf("Len = %d", g.Len())
	}
	// Degree bound R can be exceeded only by connectivity-repair edges;
	// allow a small slack but no blowup.
	for u := 0; u < g.Len(); u++ {
		if d := len(g.BaseNeighbors(uint32(u))); d > 12+6 {
			t.Fatalf("vertex %d degree %d", u, d)
		}
	}
}

func TestEveryVertexReachable(t *testing.T) {
	_, g := buildSmall(t, 0)
	// BFS from entry must cover all vertices (the NSG tree step's promise).
	seen := make([]bool, g.Len())
	stack := []uint32{g.EntryPoint}
	seen[g.EntryPoint] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.BaseNeighbors(u) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	if count != g.Len() {
		t.Fatalf("only %d/%d vertices reachable from entry", count, g.Len())
	}
}

func TestSearchAccuracy(t *testing.T) {
	m, g := buildSmall(t, 0)
	queries := randomMatrix(2, 40, 8)
	gt := bruteforce.AllKNN(m, queries, vec.L2, 10)
	s := graph.NewSearcher(g)
	var sum float64
	for qi := 0; qi < 40; qi++ {
		res, _ := s.Search(queries.Row(qi), 10, 80)
		sum += metrics.Recall(graph.IDs(res), bruteforce.IDs(gt[qi]))
	}
	if avg := sum / 40; avg < 0.9 {
		t.Fatalf("NSG recall@10 = %.3f, want >= 0.9", avg)
	}
}

func TestTauVariantKeepsMoreEdges(t *testing.T) {
	_, g0 := buildSmall(t, 0)
	_, gTau := buildSmall(t, 0.3)
	b0, _ := g0.EdgeCount()
	bt, _ := gTau.EdgeCount()
	if bt < b0 {
		t.Fatalf("tau build has fewer edges (%d) than MRNG build (%d)", bt, b0)
	}
}

func TestEmptyBuild(t *testing.T) {
	m := vec.NewMatrix(0, 4)
	knn := &graph.KNNGraph{K: 0}
	g := Build(m, knn, DefaultConfig(vec.L2))
	if g.Len() != 0 {
		t.Fatal("empty build should yield empty graph")
	}
}
