// Package ngfix is a from-scratch Go reproduction of "Dynamically Detect
// and Fix Hardness for Efficient Approximate Nearest Neighbor Search" —
// Escape Hardness, NGFix, RFix, and their maintenance machinery — together
// with the baselines its evaluation compares against (HNSW, NSG, τ-MNG,
// RoarGraph) and a harness that regenerates every table and figure of the
// paper on synthetic cross-modal workloads.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for measured
// results against the paper's claims.
//
// The root package intentionally exports nothing; the library lives under
// internal/ and is exercised through the binaries in cmd/, the runnable
// examples in examples/, and the benchmarks in bench_test.go.
package ngfix
