// Command ngfix-search loads an index built by ngfix-build and runs a
// query file against it, reporting results and (when ground truth is
// computable from a base file) recall.
//
// Usage:
//
//	ngfix-search -index index.ngig -queries q.ngfx -k 10 -ef 100
//	ngfix-search -index index.ngig -queries q.ngfx -k 10 -ef 100 -recall
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ngfix/internal/bruteforce"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/metrics"
)

func main() {
	indexPath := flag.String("index", "", "index file (required)")
	queryPath := flag.String("queries", "", "query vectors file (required)")
	k := flag.Int("k", 10, "results per query")
	ef := flag.Int("ef", 100, "search list size")
	recall := flag.Bool("recall", false, "compute recall against brute-force ground truth")
	verbose := flag.Bool("v", false, "print per-query results")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ngfix-search:", err)
		os.Exit(1)
	}
	if *indexPath == "" || *queryPath == "" {
		fail(fmt.Errorf("-index and -queries are required"))
	}
	g, err := graph.Load(*indexPath)
	if err != nil {
		fail(err)
	}
	queries, err := dataset.LoadMatrix(*queryPath)
	if err != nil {
		fail(err)
	}
	if queries.Dim() != g.Dim() {
		fail(fmt.Errorf("query dim %d != index dim %d", queries.Dim(), g.Dim()))
	}
	fmt.Printf("index: %d vectors, dim %d, metric %s, avg degree %.1f\n",
		g.Len(), g.Dim(), g.Metric, g.AvgDegree())

	var gt [][]bruteforce.Neighbor
	if *recall {
		gt = bruteforce.AllKNN(g.Vectors, queries, g.Metric, *k)
	}

	s := graph.NewSearcher(g)
	var totalNDC int64
	var sumRecall float64
	start := time.Now()
	for qi := 0; qi < queries.Rows(); qi++ {
		res, st := s.Search(queries.Row(qi), *k, *ef)
		totalNDC += st.NDC
		if *verbose {
			fmt.Printf("q%d:", qi)
			for _, r := range res {
				fmt.Printf(" %d(%.4f)", r.ID, r.Dist)
			}
			fmt.Println()
		}
		if gt != nil {
			sumRecall += metrics.Recall(graph.IDs(res), bruteforce.IDs(gt[qi]))
		}
	}
	elapsed := time.Since(start)
	nq := float64(queries.Rows())
	fmt.Printf("%d queries in %s: %.0f QPS, %.0f NDC/query, %.1fus/query\n",
		queries.Rows(), elapsed.Round(time.Microsecond),
		nq/elapsed.Seconds(), float64(totalNDC)/nq, elapsed.Seconds()*1e6/nq)
	if gt != nil {
		fmt.Printf("recall@%d = %.4f\n", *k, sumRecall/nq)
	}
}
