// Command ngfix-inspect is a hardness-diagnosis tool: for one query of a
// synthetic workload it prints the Escape Hardness picture of the
// surrounding graph — G_k(q) connectivity, the EH matrix summary, which
// NN pairs are defective — then applies NGFix/RFix to just that query and
// shows the before/after search behavior. It is the paper's Figure 3/5/6
// walkthrough as a CLI.
//
// Usage:
//
//	ngfix-inspect -recipe LAION -scale 0.2 -query 3 -k 20
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ngfix/internal/bruteforce"
	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/metrics"
)

func main() {
	recipe := flag.String("recipe", "LAION", "dataset recipe")
	scale := flag.Float64("scale", 0.2, "dataset scale")
	queryIdx := flag.Int("query", 0, "index of the OOD test query to inspect")
	k := flag.Int("k", 20, "neighborhood size")
	delta := flag.Int("delta", 0, "delta threshold (0 = 2k)")
	flag.Parse()

	var cfg dataset.Config
	found := false
	for _, c := range dataset.All(dataset.Scale(*scale)) {
		if strings.EqualFold(c.Name, *recipe) {
			cfg, found = c, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown recipe %q\n", *recipe)
		os.Exit(2)
	}

	d := dataset.Generate(cfg)
	if *queryIdx < 0 || *queryIdx >= d.TestOOD.Rows() {
		fmt.Fprintf(os.Stderr, "query index out of range [0,%d)\n", d.TestOOD.Rows())
		os.Exit(2)
	}
	q := d.TestOOD.Row(*queryIdx)
	kmax := 2 * (*k)
	dl := uint16(*delta)
	if dl == 0 {
		dl = uint16(kmax)
	}

	fmt.Printf("dataset %s: %d base vectors, metric %s\n", cfg.Name, d.Base.Rows(), cfg.Metric)
	h := hnsw.Build(d.Base, hnsw.DefaultConfig(cfg.Metric))
	g := h.Bottom()

	gt := bruteforce.KNN(d.Base, cfg.Metric, q, kmax, nil)
	nn := bruteforce.IDs(gt)

	inspect := func(stage string) float64 {
		sg := graph.InducedSubgraph(g, nn[:*k])
		eh := core.ComputeEH(g, nn, *k)
		s := graph.NewSearcher(g)
		res, st := s.SearchFrom(q, *k, *k, g.EntryPoint)
		recall := metrics.Recall(graph.IDs(res), nn[:*k])
		fmt.Printf("\n--- %s ---\n", stage)
		fmt.Printf("G_%d(q): %d edges, avg reachable %.1f/%d, strongly connected: %v\n",
			*k, sg.EdgeCount(), sg.AvgReachable(), *k, sg.StronglyConnected())
		fmt.Printf("EH matrix: max finite %d, pairs with EH > %d: %d of %d\n",
			eh.MaxFinite(), dl, eh.CountAbove(dl), (*k)*(*k-1))
		// Worst pairs.
		worst := 0
		for i := 0; i < *k && worst < 6; i++ {
			for j := 0; j < *k && worst < 6; j++ {
				if i != j && eh.At(i, j) > dl {
					v := "inf"
					if eh.At(i, j) != core.InfEH {
						v = fmt.Sprintf("%d", eh.At(i, j))
					}
					fmt.Printf("  hard pair: NN#%d -> NN#%d  EH=%s\n", i+1, j+1, v)
					worst++
				}
			}
		}
		fmt.Printf("greedy search (ef=%d): recall@%d = %.3f, NDC = %d\n", *k, *k, recall, st.NDC)
		return recall
	}

	before := inspect("before fixing")

	ix := core.New(g, core.Options{Rounds: []core.Round{{K: *k, KMax: kmax, Delta: dl, RFix: true}}, LEx: 48})
	rep := ix.FixQuery(q, nn)
	fmt.Printf("\nNGFix/RFix applied to this query: +%d NGFix edges, +%d RFix edges (RFix triggered: %v)\n",
		rep.NGFixEdges, rep.RFixEdges, rep.RFixTriggered)

	after := inspect("after fixing")
	fmt.Printf("\nrecall@%d: %.3f -> %.3f\n", *k, before, after)
}
