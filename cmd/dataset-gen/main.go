// Command dataset-gen materializes the synthetic dataset recipes to disk
// in the repository's binary vector format, and prints the Table-1-style
// statistics with OOD diagnostics.
//
// Usage:
//
//	dataset-gen -recipe LAION -scale 1.0 -dir ./data
//	dataset-gen -recipe all -stats-only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ngfix/internal/dataset"
)

func main() {
	recipe := flag.String("recipe", "all", "recipe name (TextToImage, LAION, WebVid, MainSearch, SIFT, DEEP) or 'all'")
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	dir := flag.String("dir", ".", "output directory")
	statsOnly := flag.Bool("stats-only", false, "print statistics without writing files")
	flag.Parse()

	var cfgs []dataset.Config
	for _, cfg := range dataset.All(dataset.Scale(*scale)) {
		if *recipe == "all" || strings.EqualFold(cfg.Name, *recipe) {
			cfgs = append(cfgs, cfg)
		}
	}
	if len(cfgs) == 0 {
		fmt.Fprintf(os.Stderr, "dataset-gen: unknown recipe %q\n", *recipe)
		os.Exit(2)
	}

	for _, cfg := range cfgs {
		d := dataset.Generate(cfg)
		diag := dataset.Diagnose(d)
		fmt.Printf("%s: |X|=%d |Qhist|=%d |Qtest|=%d d=%d metric=%s\n",
			cfg.Name, d.Base.Rows(), d.History.Rows(), d.TestOOD.Rows(), cfg.Dim, cfg.Metric)
		fmt.Printf("  OOD diagnostics: NNdist OOD=%.4f ID=%.4f, slicedW1 OOD=%.4f ID=%.4f\n",
			diag.MeanNNDistOOD, diag.MeanNNDistID, diag.SlicedW1OOD, diag.SlicedW1ID)
		if *statsOnly {
			continue
		}
		base := strings.ToLower(cfg.Name)
		files := map[string]func(string) error{
			base + ".base.ngfx":    func(p string) error { return dataset.SaveMatrix(p, d.Base) },
			base + ".history.ngfx": func(p string) error { return dataset.SaveMatrix(p, d.History) },
			base + ".ood.ngfx":     func(p string) error { return dataset.SaveMatrix(p, d.TestOOD) },
			base + ".id.ngfx":      func(p string) error { return dataset.SaveMatrix(p, d.TestID) },
		}
		for name, save := range files {
			p := filepath.Join(*dir, name)
			if err := save(p); err != nil {
				fmt.Fprintf(os.Stderr, "dataset-gen: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("  wrote %s\n", p)
		}
	}
}
