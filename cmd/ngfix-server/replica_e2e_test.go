package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ngfix/internal/dataset"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/server"
	"ngfix/internal/vec"
)

// scrapeSamples fetches and strictly parses a /metrics exposition.
func scrapeSamples(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	return samples
}

// saveTestIndex builds a small prebuilt index file for the binary.
func saveTestIndex(t *testing.T, work string, seed int64) (*dataset.Dataset, string) {
	t.Helper()
	d := dataset.Generate(dataset.Config{
		Name: "replica-e2e", N: 400, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: seed,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}
	return d, idx
}

// TestMetricsReplicaFamilies is the replica telemetry gate: at -shards 2
// with -self-replica, /metrics must export every ngfix_replica_* family
// for both shards, shard-labeled, and the tail must visibly apply the
// leader's mutations. Named TestMetrics* so the CI metrics-contract job
// (go test -run 'TestMetrics') picks it up.
func TestMetricsReplicaFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)
	d, idx := saveTestIndex(t, work, 19)

	p := startServer(t, bin, "-index", idx,
		"-snapshot-dir", filepath.Join(work, "state"),
		"-shards", "2", "-self-replica", "-replica-poll", "10ms")

	// Both shard replicas bootstrap from the startup snapshots.
	waitFor(t, 10*time.Second, "both shard replicas ready", func() bool {
		s := scrapeSamples(t, p.base)
		return s[`ngfix_replica_ready{shard="0"}`] == 1 && s[`ngfix_replica_ready{shard="1"}`] == 1
	})

	var ins server.InsertResponse
	p.post(t, "/v1/insert", server.InsertRequest{Vector: d.TestOOD.Row(0)}, &ins)
	waitFor(t, 10*time.Second, "tail applied the insert", func() bool {
		s := scrapeSamples(t, p.base)
		return s[`ngfix_replica_applied_records_total{shard="0"}`]+
			s[`ngfix_replica_applied_records_total{shard="1"}`] >= 1
	})

	samples := scrapeSamples(t, p.base)
	for _, fam := range []string{
		"ngfix_replica_ready",
		"ngfix_replica_generation",
		"ngfix_replica_lag_generations",
		"ngfix_replica_lag_bytes",
		"ngfix_replica_lag_records",
		"ngfix_replica_applied_records_total",
		"ngfix_replica_tail_errors_total",
		"ngfix_replica_resyncs_total",
		"ngfix_replica_failovers_total",
	} {
		for shard := 0; shard < 2; shard++ {
			key := fmt.Sprintf(`%s{shard="%d"}`, fam, shard)
			if _, ok := samples[key]; !ok {
				t.Errorf("missing %s in exposition", key)
			}
		}
	}
	// The sharded-telemetry contract extends to replica families: none may
	// appear without naming its shard.
	for key := range samples {
		if strings.HasPrefix(key, "ngfix_replica_") && !strings.Contains(key, `shard="`) {
			t.Errorf("replica family without shard label: %s", key)
		}
	}
	// Caught-up replicas on a healthy leader: no failovers, no errors.
	if got := samples[`ngfix_replica_failovers_total{shard="0"}`] + samples[`ngfix_replica_failovers_total{shard="1"}`]; got != 0 {
		t.Errorf("failovers on a healthy leader: %v", got)
	}
	p.terminate(t)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicaFollowerEndToEnd is the replication acceptance test at the
// binary level: a sharded leader feeds one follower over HTTP
// (-replica-of URL) and one straight off its snapshot directory
// (-replica-of dir, shard count from the manifest). Both bootstrap,
// tail the leader's inserts, answer searches flagged stale with the
// leader's exact results, and refuse mutations.
func TestReplicaFollowerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)
	d, idx := saveTestIndex(t, work, 23)
	snapDir := filepath.Join(work, "state")

	leader := startServer(t, bin, "-index", idx,
		"-snapshot-dir", snapDir, "-shards", "2")

	// startServer blocks on /readyz, which for a follower means every
	// shard replica bootstrapped — snapshot shipping is covered by getting
	// here at all.
	httpFol := startServer(t, bin, "-replica-of", leader.base,
		"-shards", "2", "-replica-poll", "10ms")
	dirFol := startServer(t, bin, "-replica-of", snapDir, "-replica-poll", "10ms")

	var ins server.InsertResponse
	leader.post(t, "/v1/insert", server.InsertRequest{Vector: d.TestOOD.Row(0)}, &ins)

	q := server.SearchRequest{Vector: d.TestOOD.Row(0), K: server.IntPtr(3), EF: server.IntPtr(30)}
	var want server.SearchResponse
	leader.post(t, "/v1/search", q, &want)
	if want.Stale {
		t.Fatal("healthy leader answered stale")
	}
	if len(want.Results) == 0 || want.Results[0].ID != ins.ID {
		t.Fatalf("leader search missed its own insert: %+v", want.Results)
	}

	for _, fol := range []*serverProc{httpFol, dirFol} {
		// The WAL tail delivers the insert within a few poll cycles.
		var got server.SearchResponse
		waitFor(t, 10*time.Second, "follower caught up with the insert", func() bool {
			got = server.SearchResponse{}
			fol.post(t, "/v1/search", q, &got)
			return len(got.Results) > 0 && got.Results[0].ID == ins.ID
		})
		if !got.Stale {
			t.Fatal("follower answered without the stale flag")
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("follower returned %d results, leader %d", len(got.Results), len(want.Results))
		}
		for i := range got.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("follower result %d = %+v, leader %+v", i, got.Results[i], want.Results[i])
			}
		}

		// Mutations have no route on a follower.
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(server.InsertRequest{Vector: d.TestOOD.Row(1)}); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(fol.base+"/v1/insert", "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("follower insert: status %d, want 404", resp.StatusCode)
		}

		// Follower stats are replication state: shard count (the dir
		// follower resolved it from the manifest, no -shards flag), overall
		// readiness, and one status block per shard replica.
		resp, err = http.Get(fol.base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		var st server.FollowerStatsResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Shards != 2 || !st.Ready || len(st.Replica) != 2 {
			t.Fatalf("follower stats: shards=%d ready=%v replicas=%d, want 2/true/2", st.Shards, st.Ready, len(st.Replica))
		}
	}

	dirFol.terminate(t)
	httpFol.terminate(t)
	leader.terminate(t)
}
