// Command ngfix-server serves an NGFix index over HTTP with continuous
// online fixing: the index repairs itself with the query stream it
// observes, the paper's production deployment story.
//
// Usage:
//
//	ngfix-server -base base.ngfx -metric cosine -addr :8080 -autofix
//	ngfix-server -index prebuilt.ngig -addr :8080
//	ngfix-server -index prebuilt.ngig -snapshot-dir ./state   # durable
//	ngfix-server -snapshot-dir ./state                        # recover & serve
//
// Endpoints: POST /v1/{search,insert,delete,fix,purge,snapshot},
// GET /v1/stats, GET /healthz, GET /readyz, GET /metrics (Prometheus
// text format; disable with -metrics=false). See internal/server for
// the JSON shapes, and README "Observability" for the metric families,
// the slow-query log (-slow-query-ms), and the pprof endpoints
// (-pprof).
//
// With -snapshot-dir the server is crash-safe: it journals every insert,
// delete, and fix batch to an op log, snapshots the graph on a cadence
// (and on SIGTERM/SIGINT, after draining in-flight requests), and on
// startup recovers the last acknowledged state from the newest snapshot
// plus the log — including the extra edges learned from live traffic.
//
// With -shards N the index splits into N shards, each its own fixer,
// op log, and snapshot directory (shard-<i>/ under -snapshot-dir, with
// a MANIFEST pinning the count): searches scatter-gather across all
// shards, mutations route by id, and a stalled or degraded shard never
// blocks the others. The default -shards 1 keeps the pre-sharding
// single-directory layout, byte-compatible with existing state; a
// sharded directory remembers its count, so restarts need no flag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ngfix/internal/admission"
	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/persist"
	"ngfix/internal/policy"
	"ngfix/internal/pq"
	"ngfix/internal/repair"
	"ngfix/internal/replica"
	"ngfix/internal/server"
	"ngfix/internal/shard"
	"ngfix/internal/vec"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fl := flag.NewFlagSet("ngfix-server", flag.ExitOnError)
	addr := fl.String("addr", ":8080", "listen address")
	indexPath := fl.String("index", "", "prebuilt index file (from ngfix-build)")
	basePath := fl.String("base", "", "base vectors file (builds an HNSW base graph at startup)")
	metricName := fl.String("metric", "l2", "metric when building from -base: l2 | ip | cosine")
	m := fl.Int("m", 16, "HNSW M when building from -base")
	efc := fl.Int("efc", 200, "HNSW efConstruction when building from -base")
	lex := fl.Int("lex", 48, "extra-degree budget for online fixing")
	batch := fl.Int("fix-batch", 128, "queries per online fix batch")
	sample := fl.Int("fix-sample", 1, "record every n-th query for fixing")
	autofix := fl.Bool("autofix", false, "fix synchronously when the batch fills (otherwise POST /v1/fix or use -fix-interval)")
	interval := fl.Duration("fix-interval", 0, "background fixing period (0 disables)")
	repairMode := fl.String("repair-mode", "adaptive", "background repair policy with -fix-interval: adaptive (per-shard signal-triggered controller with hysteresis and pressure backoff) | interval (legacy fixed cadence)")
	repairThetaHi := fl.Float64("repair-theta-hi", 0.3, "unreachable-rate EWMA that enters eager repair (adaptive mode)")
	repairThetaLo := fl.Float64("repair-theta-lo", 0.1, "unreachable-rate EWMA below which eager repair may exit after the dwell (adaptive mode)")
	repairDwell := fl.Duration("repair-dwell", 5*time.Second, "minimum time in eager repair before exiting (hysteresis; adaptive mode)")
	repairMaxInterval := fl.Duration("repair-max-interval", 0, "cadence ceiling repair stretches toward under admission pressure (0 means 16x -fix-interval)")
	repairMinBatch := fl.Int("repair-min-batch", 8, "smallest fix batch the controller pays admission for before deferring a tick (adaptive mode)")
	snapDir := fl.String("snapshot-dir", "", "directory for snapshots + op log (enables crash safety and recovery)")
	shards := fl.Int("shards", 1, "shard count: each shard gets its own fixer, op log, and snapshot subdirectory; searches scatter-gather (fixed at build time — a sharded -snapshot-dir pins it)")
	snapEvery := fl.Int("snapshot-every", 8, "automatic snapshot every N fix batches (0 disables; needs -snapshot-dir)")
	snapOps := fl.Int("snapshot-ops", 4096, "automatic snapshot every M inserts+deletes (0 disables; needs -snapshot-dir)")
	oplog := fl.Bool("oplog", true, "journal inserts/deletes/fix batches between snapshots (needs -snapshot-dir)")
	pqOn := fl.Bool("pq", false, "memory-tiered serving: navigate the graph on compressed PQ-ADC lookups and exact-rerank only the top candidates; snapshots persist the quantizer so recovery re-encodes instead of retraining")
	pqM := fl.Int("pq-m", 0, "PQ subspace count (0 picks the largest of 2..8 dividing the dimension; errors on dimensions only 1 divides)")
	pqKS := fl.Int("pq-ks", 64, "PQ centroids per subspace (max 256)")
	pqRerank := fl.Int("pq-rerank", 4, "exact-rerank pool factor: each search reranks factor*k compressed candidates at full precision")
	pqTier := fl.Bool("pq-tier", true, "with -pq and -snapshot-dir: demote the full rerank vectors to an mmap'd per-shard tier file (page cache instead of heap); without a snapshot dir reranks read the in-heap matrix")
	drainTimeout := fl.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	maxInflight := fl.Int("max-inflight", 64, "admission capacity in cost units (a search costs ~ef/100, rounded up; 0 disables admission control)")
	queueDepth := fl.Int("queue-depth", 0, "bounded wait queue beyond capacity; excess requests get 429 (0 means 2x -max-inflight)")
	searchTimeout := fl.Duration("search-timeout", 2*time.Second, "per-request compute budget; expired searches return partial results with truncated:true (0 disables)")
	efFloor := fl.Int("ef-floor", 0, "minimum ef under queue pressure: effective ef shrinks toward this floor as the queue fills (0 disables degradation)")
	adaptiveEF := fl.Bool("adaptive-ef", false, "pick each search's ef from its similarity to recent traffic (self-calibrating; explicit client ef becomes a ceiling)")
	answerCacheSize := fl.Int("answer-cache-size", 0, "answer-cache capacity in entries for exactly-repeated queries (0 disables; invalidated on every mutation)")
	augmentRate := fl.Float64("augment-rate", 0, "fraction of served queries that seed Gaussian-perturbed synthetic repair queries, 0..1 (0 disables)")
	augmentSigma := fl.Float64("augment-sigma", 0.3, "expected perturbation norm for -augment-rate synthetic queries")
	metricsOn := fl.Bool("metrics", true, "serve Prometheus metrics on GET /metrics")
	slowQueryMS := fl.Int("slow-query-ms", 0, "log every search at or over this many milliseconds (0 disables the slow-query log)")
	pprofOn := fl.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (profiling data; enable only on trusted networks)")
	replicaOf := fl.String("replica-of", "", "run as a read-only follower of a leader: a URL (http://host:port, pulls over /v1/replicate/*) or the leader's snapshot directory; serves always-stale searches, no mutations")
	selfReplica := fl.Bool("self-replica", false, "keep one in-process read replica per shard fed from this server's own stores (needs -snapshot-dir): reads on a frozen or degraded shard fail over to the replica, flagged stale")
	replicaLagMax := fl.Int64("replica-lag-max", 0, "most WAL bytes a replica may lag and still stand in for its shard (0: any bootstrapped replica serves)")
	failoverAfter := fl.Duration("failover-after", 150*time.Millisecond, "hedge delay before a primary read is retried on its replica (with -self-replica; 0 fails over only degraded shards)")
	replicaPoll := fl.Duration("replica-poll", 100*time.Millisecond, "replica WAL tail cadence")
	fl.Parse(args)
	if *repairMode != "adaptive" && *repairMode != "interval" {
		log.Printf("-repair-mode must be adaptive or interval, got %q", *repairMode)
		return 1
	}
	shardsFlagSet := false
	fl.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsFlagSet = true
		}
	})

	var reg *obs.Registry
	if *metricsOn {
		reg = obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
	}

	// Follower mode: no primaries, no stores of our own — just one read
	// replica per shard tailing the leader, served read-only.
	if *replicaOf != "" {
		return runFollower(followerConfig{
			target: *replicaOf, shards: *shards, shardsFlagSet: shardsFlagSet,
			opts: core.Options{LEx: *lex}, lagMax: *replicaLagMax, poll: *replicaPoll,
			addr: *addr, reg: reg, drainTimeout: *drainTimeout,
		})
	}

	// --- Shard count resolution: a sharded snapshot dir pins the count
	// via its manifest (routing is a function of it); a legacy dir is one
	// shard; a fresh dir takes the flag.
	n := *shards
	var stores []*persist.Store
	if *snapDir != "" {
		var err error
		n, err = persist.ResolveShards(nil, *snapDir, *shards, shardsFlagSet)
		if err != nil {
			log.Print(err)
			return 1
		}
		stores, err = persist.OpenSharded(*snapDir, n, persist.Options{})
		if err != nil {
			log.Printf("open snapshot dir: %v", err)
			return 1
		}
	} else if n < 1 {
		log.Printf("-shards must be at least 1, got %d", n)
		return 1
	}

	// Telemetry layout: with one shard every family lives unlabeled on
	// the global registry, byte-compatible with pre-sharding dashboards.
	// With N shards each fixer/store registers on its own registry
	// carrying a shard="<i>" const label; /metrics merges them.
	var shardRegs []*obs.Registry
	fixerReg := func(i int) *obs.Registry { return reg }
	if reg != nil && n > 1 {
		shardRegs = make([]*obs.Registry, n)
		for i := range shardRegs {
			shardRegs[i] = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		}
		fixerReg = func(i int) *obs.Registry { return shardRegs[i] }
	}
	for i, st := range stores {
		if r := fixerReg(i); r != nil {
			st.RegisterMetrics(r)
		}
	}

	// --- Index acquisition: recover per shard from the snapshot dir when
	// it has state, otherwise build/load, partition row-interleaved
	// (global id = original row index), and seed the dir.
	var ixs []*core.Index
	opts := core.Options{LEx: *lex}
	recovered := len(stores) > 0 && stores[0].HasState()
	switch {
	case recovered:
		var replayed []int
		var err error
		ixs, replayed, err = shard.Recover(stores, opts)
		if err != nil {
			log.Printf("recover: %v", err)
			return 1
		}
		for i, ix := range ixs {
			log.Printf("recovered shard %d/%d from %s: generation %d, %d vectors (%d live), %d ops replayed",
				i, n, stores[i].Dir(), stores[i].Generation(), ix.G.Len(), ix.G.Live(), replayed[i])
		}
	case *indexPath != "":
		g, err := graph.Load(*indexPath)
		if err != nil {
			log.Printf("load index: %v", err)
			return 1
		}
		log.Printf("loaded index: %d vectors, dim %d, metric %s", g.Len(), g.Dim(), g.Metric)
		if n == 1 {
			// Unsharded: serve the prebuilt graph exactly as loaded.
			ixs = []*core.Index{core.New(g, opts)}
		} else {
			// A monolithic index cannot be split edge-for-edge; partition
			// its vectors and rebuild each shard's base graph.
			log.Printf("resharding prebuilt index into %d shards (per-shard base graphs rebuilt with -m/-efc)", n)
			ixs = buildShards(g.Vectors, n, hnsw.Config{M: *m, EFConstruction: *efc, Metric: g.Metric, Seed: 7}, opts)
		}
	case *basePath != "":
		base, err := dataset.LoadMatrix(*basePath)
		if err != nil {
			log.Printf("load base: %v", err)
			return 1
		}
		metric, err := parseMetric(*metricName)
		if err != nil {
			log.Print(err)
			return 1
		}
		start := time.Now()
		ixs = buildShards(base, n, hnsw.Config{M: *m, EFConstruction: *efc, Metric: metric, Seed: 7}, opts)
		log.Printf("built HNSW base over %d vectors in %d shard(s) in %s", base.Rows(), n, time.Since(start).Round(time.Millisecond))
	default:
		log.Print("one of -index, -base, or a non-empty -snapshot-dir is required")
		return 1
	}

	fixers := make([]*core.OnlineFixer, len(ixs))
	for i, ix := range ixs {
		var wal core.WAL
		if len(stores) > 0 {
			if *oplog {
				wal = stores[i]
			} else {
				wal = snapshotOnly{stores[i]}
			}
		}
		fixers[i] = core.NewOnlineFixer(ix, core.OnlineConfig{
			BatchSize: *batch, SampleEvery: *sample, AutoFix: *autofix,
			WAL:                  wal,
			SnapshotEveryBatches: *snapEvery, SnapshotEveryMutations: *snapOps,
			Metrics: fixerReg(i),
		})
	}
	if len(stores) > 0 && !*oplog {
		log.Print("op log disabled (-oplog=false): mutations between snapshots will not survive a crash")
	}

	// Compressed serving: prefer the recovered sidecar (attach re-encodes
	// only the WAL-replayed tail against the frozen codebooks — codes stay
	// bit-identical across the crash); train only when no generation has
	// one or the sidecar cannot describe the recovered graph.
	if *pqOn {
		for i, f := range fixers {
			pcfg := core.PQConfig{M: *pqM, KS: *pqKS, RerankFactor: *pqRerank}
			if len(stores) > 0 && *pqTier {
				pcfg.TierPath = filepath.Join(stores[i].Dir(), "vectors.tier")
			}
			attached := false
			if recovered {
				switch q, err := stores[i].LoadPQ(); {
				case err == nil:
					if aerr := f.AttachPQ(q, pcfg); aerr != nil {
						log.Printf("shard %d: pq sidecar rejected (%v); retraining", i, aerr)
					} else {
						attached = true
					}
				case errors.Is(err, persist.ErrNoPQ):
					// Sealed without PQ — train below.
				default:
					log.Printf("shard %d: pq sidecar unreadable (%v); retraining", i, err)
				}
			}
			if !attached {
				if err := f.EnablePQ(pcfg); err != nil {
					log.Printf("shard %d: enable pq: %v", i, err)
					return 1
				}
			}
			st, _ := f.PQStats()
			log.Printf("shard %d: pq serving %s (m=%d ks=%d rerank=%dx): resident %d bytes vs %d full-precision",
				i, map[bool]string{true: "recovered", false: "trained"}[attached],
				st.M, st.KS, st.Rerank, st.ResidentBytes, st.FullVectorBytes)
		}
	}

	// Seal startup state into a fresh generation per shard: recovery
	// never appends to a log that might end in a torn record, and a
	// fresh dir gets its first durable snapshot before serving a single
	// request. Sealing after PQ enable means the first generation already
	// carries the quantizer sidecar.
	if len(stores) > 0 {
		for i, f := range fixers {
			if err := f.Snapshot(); err != nil {
				log.Printf("shard %d: initial snapshot: %v", i, err)
				return 1
			}
		}
	}
	group, err := shard.NewGroup(fixers)
	if err != nil {
		log.Printf("assemble shard group: %v", err)
		return 1
	}

	s := server.NewSharded(group)
	if len(stores) > 0 {
		s.SnapshotFunc = group.Snapshot
		// Any persisted server can feed followers: the replication
		// endpoints read only the store, never the fixers' locks.
		s.Stores = stores
	}
	var replicaSet *replica.Set
	if *selfReplica {
		if len(stores) == 0 {
			log.Print("-self-replica needs -snapshot-dir (replicas tail the store's op log)")
			return 1
		}
		reps := make([]*replica.Replica, len(stores))
		rr := make([]shard.ReadReplica, len(stores))
		for i, st := range stores {
			reps[i] = replica.New(replica.StoreSource{St: st}, replica.Config{
				Shard: i, Opts: opts, LagMax: *replicaLagMax, Poll: *replicaPoll,
				Logf: log.Printf,
			})
			rr[i] = reps[i]
			if r := fixerReg(i); r != nil {
				reps[i].RegisterMetrics(r)
			}
		}
		replicaSet, err = replica.NewSet(reps)
		if err != nil {
			log.Printf("assemble replica set: %v", err)
			return 1
		}
		pol := shard.FailoverPolicy{
			After: *failoverAfter,
			// A shard whose durability already failed is known-bad: route
			// its reads to the replica immediately, no hedge delay.
			Unhealthy: func(sh int) bool { return group.Fixer(sh).Degraded() },
		}
		if err := group.SetReplicas(rr, pol); err != nil {
			log.Printf("attach replicas: %v", err)
			return 1
		}
		s.Replicas = replicaSet
		log.Printf("self-replica enabled: %d per-shard read replicas, failover after %s, lag max %d bytes",
			len(reps), *failoverAfter, *replicaLagMax)
	}
	if *maxInflight > 0 {
		s.Admission = admission.New(admission.Config{Capacity: *maxInflight, QueueDepth: *queueDepth})
	}
	s.SearchTimeout = *searchTimeout
	s.EFFloor = *efFloor
	if *adaptiveEF || *answerCacheSize > 0 || *augmentRate > 0 {
		if *augmentRate < 0 || *augmentRate > 1 {
			log.Printf("-augment-rate must be in 0..1, got %g", *augmentRate)
			return 1
		}
		gm := ixs[0].G.Metric
		var adaptive *policy.Adaptive
		if *adaptiveEF {
			// Calibration searches run sequentially within a shard fan-out
			// (parallel 1): they are background work and should not steal
			// cores from serving, which admission gating alone can't ensure.
			adaptive = policy.NewAdaptive(group.Dim(), policy.AdaptiveConfig{Metric: gm, Seed: 11},
				func(q []float32, k, ef int) []graph.Result {
					res, _ := group.SearchCtx(context.Background(), q, k, ef, 1)
					return res
				})
		}
		augmenter := policy.NewAugmenter(policy.AugmentConfig{
			Rate: *augmentRate, Sigma: *augmentSigma,
			Normalize: gm == vec.Cosine, Seed: 13,
		})
		var acquire func() (func(), bool)
		if s.Admission != nil {
			adm := s.Admission
			acquire = func() (func(), bool) { return adm.TryAcquire(adm.FixCost(1)) }
		}
		eng := policy.NewEngine(policy.NewCache(*answerCacheSize), adaptive, augmenter,
			group.RecordSynthetic, acquire)
		s.EnablePolicy(eng)
		log.Printf("policy layer enabled: adaptive-ef=%v answer-cache-size=%d augment-rate=%g",
			*adaptiveEF, *answerCacheSize, *augmentRate)
	}
	if reg != nil {
		s.EnableMetrics(reg, shardRegs...) // also wires the admission controller's families
	}
	if *slowQueryMS > 0 {
		s.SlowQueries = &obs.SlowQueryLog{
			Threshold: time.Duration(*slowQueryMS) * time.Millisecond,
			Logf:      log.Printf,
		}
	}

	// The pprof mux wraps the API handler so profiling never rides on the
	// DefaultServeMux (whose other registrations we don't control).
	var handler http.Handler = s
	if *pprofOn {
		top := http.NewServeMux()
		top.HandleFunc("/debug/pprof/", pprof.Index)
		top.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		top.HandleFunc("/debug/pprof/profile", pprof.Profile)
		top.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		top.HandleFunc("/debug/pprof/trace", pprof.Trace)
		top.Handle("/", s)
		handler = top
		log.Print("pprof enabled on /debug/pprof/")
	}

	// --- Lifecycle: configured http.Server, signal-driven graceful
	// shutdown, context-stopped background fixer.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if replicaSet != nil {
		go replicaSet.Run(ctx)
	}

	if *interval > 0 {
		if *repairMode == "interval" {
			// Escape hatch: the pre-controller fixed cadence, unchanged.
			go group.RunBackground(ctx, *interval, log.Printf)
		} else {
			ctls := make([]*repair.Controller, group.Shards())
			for i := range ctls {
				ctls[i] = repair.New(i, group.Fixer(i), s.Admission, repair.Config{
					Interval:    *interval,
					MaxInterval: *repairMaxInterval,
					ThetaHi:     *repairThetaHi,
					ThetaLo:     *repairThetaLo,
					Dwell:       *repairDwell,
					MinBatch:    *repairMinBatch,
				})
				if r := fixerReg(i); r != nil {
					ctls[i].RegisterMetrics(r)
				}
			}
			fleet := repair.NewFleet(ctls...)
			s.Repair = fleet
			go fleet.Run(ctx, log.Printf)
		}
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	log.Printf("serving on %s (shards %d, fix batch %d, autofix %v, interval %s, snapshots %v)",
		ln.Addr(), n, *batch, *autofix, *interval, len(stores) > 0)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.SetReady(true)

	select {
	case err := <-errCh:
		log.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	// Drain: stop advertising readiness, finish in-flight requests.
	log.Printf("shutdown signal received, draining (timeout %s)", *drainTimeout)
	s.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}

	// Fold any still-pending recorded queries into the graph, then make
	// the final state durable.
	if rep, err := group.FixPendingChecked(); err != nil {
		log.Printf("final fix: %v", err)
	} else if rep.Queries > 0 {
		log.Printf("final fix: %d queries, +%d edges", rep.Queries, rep.NGFixEdges+rep.RFixEdges)
	}
	if len(stores) > 0 {
		if err := group.Snapshot(); err != nil {
			log.Printf("final snapshot: %v", err)
			return 1
		}
		gens := make([]string, len(stores))
		for i, st := range stores {
			if err := st.Close(); err != nil {
				log.Printf("close store shard %d: %v", i, err)
				return 1
			}
			gens[i] = strconv.FormatUint(st.Generation(), 10)
		}
		log.Printf("final snapshot written (generation %s)", strings.Join(gens, ","))
	}
	log.Print("shutdown complete")
	return 0
}

// followerConfig carries the flags the follower mode needs.
type followerConfig struct {
	target        string // leader URL or snapshot directory
	shards        int
	shardsFlagSet bool
	opts          core.Options
	lagMax        int64
	poll          time.Duration
	addr          string
	reg           *obs.Registry
	drainTimeout  time.Duration
}

// runFollower serves -replica-of: one read replica per leader shard,
// bootstrapped from the leader's snapshots and tailing its op logs,
// behind the read-only follower HTTP surface. Searches answer with
// "stale": true; /readyz holds 503 until every shard replica is
// bootstrapped and within -replica-lag-max.
func runFollower(cfg followerConfig) int {
	n := cfg.shards
	overHTTP := strings.HasPrefix(cfg.target, "http://") || strings.HasPrefix(cfg.target, "https://")
	if !overHTTP {
		// A leader directory pins its shard count via the manifest, same
		// as the leader itself resolves it.
		var err error
		n, err = persist.ResolveShards(nil, cfg.target, cfg.shards, cfg.shardsFlagSet)
		if err != nil {
			log.Print(err)
			return 1
		}
	}
	if n < 1 {
		log.Printf("-shards must be at least 1, got %d", n)
		return 1
	}

	reps := make([]*replica.Replica, n)
	regs := make([]*obs.Registry, 0, n+1)
	if cfg.reg != nil {
		regs = append(regs, cfg.reg)
	}
	for i := range reps {
		var src replica.Source
		if overHTTP {
			src = replica.HTTPSource{Base: strings.TrimRight(cfg.target, "/"), Shard: i}
		} else if n == 1 {
			src = replica.DirSource{Dir: cfg.target}
		} else {
			src = replica.DirSource{Dir: persist.ShardDir(cfg.target, i)}
		}
		reps[i] = replica.New(src, replica.Config{
			Shard: i, Opts: cfg.opts, LagMax: cfg.lagMax, Poll: cfg.poll,
			Logf: log.Printf,
		})
		if cfg.reg != nil {
			r := cfg.reg
			if n > 1 {
				r = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
				regs = append(regs, r)
			}
			reps[i].RegisterMetrics(r)
		}
	}
	set, err := replica.NewSet(reps)
	if err != nil {
		log.Printf("assemble replica set: %v", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go set.Run(ctx)

	fol := server.NewFollower(set)
	if cfg.reg != nil {
		fol.EnableMetrics(regs...)
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           fol,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	log.Printf("following %s on %s (%d shard replica(s), lag max %d bytes)", cfg.target, ln.Addr(), n, cfg.lagMax)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutdown signal received, draining (timeout %s)", cfg.drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	log.Print("shutdown complete")
	return 0
}

// buildShards partitions base row-interleaved (row i → shard i%n, so
// global id == original row index), builds each shard's HNSW base
// graph, and wraps the bottoms as fixable indexes. n==1 degenerates to
// one graph over the whole matrix — identical to the pre-sharding path.
func buildShards(base *vec.Matrix, n int, cfg hnsw.Config, opts core.Options) []*core.Index {
	parts := shard.Partition(base, n)
	ixs := make([]*core.Index, len(parts))
	for i, p := range parts {
		ixs[i] = core.New(hnsw.Build(p, cfg).Bottom(), opts)
	}
	return ixs
}

// snapshotOnly is the -oplog=false durability mode: snapshots still run
// on their cadence, per-op journaling is dropped.
type snapshotOnly struct{ st *persist.Store }

func (snapshotOnly) LogInsert(v []float32) error                   { return nil }
func (snapshotOnly) LogDelete(id uint32) error                     { return nil }
func (snapshotOnly) LogFixEdges(updates []graph.ExtraUpdate) error { return nil }
func (s snapshotOnly) Snapshot(g *graph.Graph) error               { return s.st.Snapshot(g) }
func (s snapshotOnly) SnapshotPQ(g *graph.Graph, q *pq.Quantizer) error {
	return s.st.SnapshotPQ(g, q)
}

func parseMetric(s string) (vec.Metric, error) {
	switch strings.ToLower(s) {
	case "l2", "euclidean":
		return vec.L2, nil
	case "ip", "innerproduct", "dot":
		return vec.InnerProduct, nil
	case "cos", "cosine":
		return vec.Cosine, nil
	}
	return 0, fmt.Errorf("unknown metric %q", s)
}
