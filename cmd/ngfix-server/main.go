// Command ngfix-server serves an NGFix index over HTTP with continuous
// online fixing: the index repairs itself with the query stream it
// observes, the paper's production deployment story.
//
// Usage:
//
//	ngfix-server -base base.ngfx -metric cosine -addr :8080 -autofix
//	ngfix-server -index prebuilt.ngig -addr :8080
//	ngfix-server -index prebuilt.ngig -snapshot-dir ./state   # durable
//	ngfix-server -snapshot-dir ./state                        # recover & serve
//	ngfix-server -snapshot-dir ./state -reshard               # offline N→2N split
//
// Endpoints: POST /v1/{search,insert,delete,fix,purge,snapshot,reshard},
// GET /v1/stats, GET /healthz, GET /readyz, GET /metrics (Prometheus
// text format; disable with -metrics=false). See internal/server for
// the JSON shapes, and README "Observability" for the metric families,
// the slow-query log (-slow-query-ms), and the pprof endpoints
// (-pprof).
//
// With -snapshot-dir the server is crash-safe: it journals every insert,
// delete, and fix batch to an op log, snapshots the graph on a cadence
// (and on SIGTERM/SIGINT, after draining in-flight requests), and on
// startup recovers the last acknowledged state from the newest snapshot
// plus the log — including the extra edges learned from live traffic.
//
// With -shards N the index splits into N shards, each its own fixer,
// op log, and snapshot directory (shard-<i>/ under -snapshot-dir, with
// a MANIFEST pinning the count): searches scatter-gather across all
// shards, mutations route by id, and a stalled or degraded shard never
// blocks the others. The default -shards 1 keeps the pre-sharding
// single-directory layout, byte-compatible with existing state; a
// sharded directory remembers its count, so restarts need no flag.
//
// The shard count can grow N→2N without stopping the server: POST
// /v1/reshard streams every parent shard through two filtered children,
// tails the parents' op logs while they keep serving, then cuts over
// behind a bounded write pause (searches are never paused; mutations
// that race the cutover are retried onto the new topology). Progress is
// reported in /v1/stats and the ngfix_reshard_* families. The -reshard
// flag runs the same split offline against a quiesced directory.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"ngfix/internal/admission"
	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/persist"
	"ngfix/internal/policy"
	"ngfix/internal/pq"
	"ngfix/internal/repair"
	"ngfix/internal/replica"
	"ngfix/internal/server"
	"ngfix/internal/shard"
	"ngfix/internal/shard/reshard"
	"ngfix/internal/vec"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fl := flag.NewFlagSet("ngfix-server", flag.ExitOnError)
	addr := fl.String("addr", ":8080", "listen address")
	indexPath := fl.String("index", "", "prebuilt index file (from ngfix-build)")
	basePath := fl.String("base", "", "base vectors file (builds an HNSW base graph at startup)")
	metricName := fl.String("metric", "l2", "metric when building from -base: l2 | ip | cosine")
	m := fl.Int("m", 16, "HNSW M when building from -base")
	efc := fl.Int("efc", 200, "HNSW efConstruction when building from -base")
	lex := fl.Int("lex", 48, "extra-degree budget for online fixing")
	batch := fl.Int("fix-batch", 128, "queries per online fix batch")
	sample := fl.Int("fix-sample", 1, "record every n-th query for fixing")
	autofix := fl.Bool("autofix", false, "fix synchronously when the batch fills (otherwise POST /v1/fix or use -fix-interval)")
	interval := fl.Duration("fix-interval", 0, "background fixing period (0 disables)")
	repairMode := fl.String("repair-mode", "adaptive", "background repair policy with -fix-interval: adaptive (per-shard signal-triggered controller with hysteresis and pressure backoff) | interval (legacy fixed cadence)")
	repairThetaHi := fl.Float64("repair-theta-hi", 0.3, "unreachable-rate EWMA that enters eager repair (adaptive mode)")
	repairThetaLo := fl.Float64("repair-theta-lo", 0.1, "unreachable-rate EWMA below which eager repair may exit after the dwell (adaptive mode)")
	repairDwell := fl.Duration("repair-dwell", 5*time.Second, "minimum time in eager repair before exiting (hysteresis; adaptive mode)")
	repairMaxInterval := fl.Duration("repair-max-interval", 0, "cadence ceiling repair stretches toward under admission pressure (0 means 16x -fix-interval)")
	repairMinBatch := fl.Int("repair-min-batch", 8, "smallest fix batch the controller pays admission for before deferring a tick (adaptive mode)")
	snapDir := fl.String("snapshot-dir", "", "directory for snapshots + op log (enables crash safety and recovery)")
	shards := fl.Int("shards", 1, "shard count: each shard gets its own fixer, op log, and snapshot subdirectory; searches scatter-gather (a sharded -snapshot-dir pins it; grow it N→2N with /v1/reshard or -reshard)")
	reshardFlag := fl.Bool("reshard", false, "offline maintenance: double -snapshot-dir's shard count (N→2N) and exit; the directory must hold existing state and no server may be running over it")
	snapEvery := fl.Int("snapshot-every", 8, "automatic snapshot every N fix batches (0 disables; needs -snapshot-dir)")
	snapOps := fl.Int("snapshot-ops", 4096, "automatic snapshot every M inserts+deletes (0 disables; needs -snapshot-dir)")
	oplog := fl.Bool("oplog", true, "journal inserts/deletes/fix batches between snapshots (needs -snapshot-dir)")
	pqOn := fl.Bool("pq", false, "memory-tiered serving: navigate the graph on compressed PQ-ADC lookups and exact-rerank only the top candidates; snapshots persist the quantizer so recovery re-encodes instead of retraining")
	pqM := fl.Int("pq-m", 0, "PQ subspace count (0 picks the largest of 2..8 dividing the dimension; errors on dimensions only 1 divides)")
	pqKS := fl.Int("pq-ks", 64, "PQ centroids per subspace (max 256)")
	pqRerank := fl.Int("pq-rerank", 4, "exact-rerank pool factor: each search reranks factor*k compressed candidates at full precision")
	pqTier := fl.Bool("pq-tier", true, "with -pq and -snapshot-dir: demote the full rerank vectors to an mmap'd per-shard tier file (page cache instead of heap); without a snapshot dir reranks read the in-heap matrix")
	drainTimeout := fl.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	maxInflight := fl.Int("max-inflight", 64, "admission capacity in cost units (a search costs ~ef/100, rounded up; 0 disables admission control)")
	queueDepth := fl.Int("queue-depth", 0, "bounded wait queue beyond capacity; excess requests get 429 (0 means 2x -max-inflight)")
	searchTimeout := fl.Duration("search-timeout", 2*time.Second, "per-request compute budget; expired searches return partial results with truncated:true (0 disables)")
	efFloor := fl.Int("ef-floor", 0, "minimum ef under queue pressure: effective ef shrinks toward this floor as the queue fills (0 disables degradation)")
	adaptiveEF := fl.Bool("adaptive-ef", false, "pick each search's ef from its similarity to recent traffic (self-calibrating; explicit client ef becomes a ceiling)")
	answerCacheSize := fl.Int("answer-cache-size", 0, "answer-cache capacity in entries for exactly-repeated queries (0 disables; invalidated on every mutation)")
	augmentRate := fl.Float64("augment-rate", 0, "fraction of served queries that seed Gaussian-perturbed synthetic repair queries, 0..1 (0 disables)")
	augmentSigma := fl.Float64("augment-sigma", 0.3, "expected perturbation norm for -augment-rate synthetic queries")
	metricsOn := fl.Bool("metrics", true, "serve Prometheus metrics on GET /metrics")
	slowQueryMS := fl.Int("slow-query-ms", 0, "log every search at or over this many milliseconds (0 disables the slow-query log)")
	pprofOn := fl.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (profiling data; enable only on trusted networks)")
	replicaOf := fl.String("replica-of", "", "run as a read-only follower of a leader: a URL (http://host:port, pulls over /v1/replicate/*) or the leader's snapshot directory; serves always-stale searches, no mutations")
	selfReplica := fl.Bool("self-replica", false, "keep one in-process read replica per shard fed from this server's own stores (needs -snapshot-dir): reads on a frozen or degraded shard fail over to the replica, flagged stale")
	replicaLagMax := fl.Int64("replica-lag-max", 0, "most WAL bytes a replica may lag and still stand in for its shard (0: any bootstrapped replica serves)")
	failoverAfter := fl.Duration("failover-after", 150*time.Millisecond, "hedge delay before a primary read is retried on its replica (with -self-replica; 0 fails over only degraded shards)")
	replicaPoll := fl.Duration("replica-poll", 100*time.Millisecond, "replica WAL tail cadence")
	fl.Parse(args)
	if *repairMode != "adaptive" && *repairMode != "interval" {
		log.Printf("-repair-mode must be adaptive or interval, got %q", *repairMode)
		return 1
	}
	shardsFlagSet := false
	fl.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsFlagSet = true
		}
	})

	// Offline reshard mode: split, report, exit — no listener.
	if *reshardFlag {
		return runReshardCLI(*snapDir, *shards, shardsFlagSet, core.Options{LEx: *lex})
	}

	var reg *obs.Registry
	if *metricsOn {
		reg = obs.NewRegistry()
		obs.RegisterProcessMetrics(reg)
	}

	// Follower mode: no primaries, no stores of our own — just one read
	// replica per shard tailing the leader, served read-only.
	if *replicaOf != "" {
		return runFollower(followerConfig{
			target: *replicaOf, shards: *shards, shardsFlagSet: shardsFlagSet,
			opts: core.Options{LEx: *lex}, lagMax: *replicaLagMax, poll: *replicaPoll,
			addr: *addr, reg: reg, drainTimeout: *drainTimeout,
		})
	}

	// --- Topology resolution: a sharded snapshot dir pins its shard count
	// and epoch via the manifest (routing is a function of the count, and
	// a committed reshard moves the tree under epoch-<e>/); a legacy dir
	// is one shard; a fresh dir takes the flag. Any crashed reshard is
	// resolved here first — to exactly the old or the new topology.
	n := *shards
	var layout persist.Layout
	var stores []*persist.Store
	if *snapDir != "" {
		var err error
		layout, err = persist.ResolveLayout(nil, *snapDir, *shards, shardsFlagSet)
		if err != nil {
			log.Print(err)
			return 1
		}
		n = layout.Shards
		stores, err = persist.OpenShardedAt(*snapDir, n, layout.Epoch, persist.Options{})
		if err != nil {
			log.Printf("open snapshot dir: %v", err)
			return 1
		}
	} else if n < 1 {
		log.Printf("-shards must be at least 1, got %d", n)
		return 1
	}

	// Telemetry layout: with one shard every family lives unlabeled on
	// the global registry, byte-compatible with pre-sharding dashboards.
	// With N shards each fixer/store registers on its own registry
	// carrying a shard="<i>" const label; /metrics merges them.
	var shardRegs []*obs.Registry
	fixerReg := func(i int) *obs.Registry { return reg }
	if reg != nil && n > 1 {
		shardRegs = make([]*obs.Registry, n)
		for i := range shardRegs {
			shardRegs[i] = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		}
		fixerReg = func(i int) *obs.Registry { return shardRegs[i] }
	}
	for i, st := range stores {
		if r := fixerReg(i); r != nil {
			st.RegisterMetrics(r)
		}
	}

	// --- Index acquisition: recover per shard from the snapshot dir when
	// it has state, otherwise build/load, partition row-interleaved
	// (global id = original row index), and seed the dir.
	var ixs []*core.Index
	opts := core.Options{LEx: *lex}
	recovered := len(stores) > 0 && stores[0].HasState()
	switch {
	case recovered:
		var replayed []int
		var err error
		ixs, replayed, err = shard.Recover(stores, opts)
		if err != nil {
			log.Printf("recover: %v", err)
			return 1
		}
		for i, ix := range ixs {
			log.Printf("recovered shard %d/%d from %s: generation %d, %d vectors (%d live), %d ops replayed",
				i, n, stores[i].Dir(), stores[i].Generation(), ix.G.Len(), ix.G.Live(), replayed[i])
		}
	case *indexPath != "":
		g, err := graph.Load(*indexPath)
		if err != nil {
			log.Printf("load index: %v", err)
			return 1
		}
		log.Printf("loaded index: %d vectors, dim %d, metric %s", g.Len(), g.Dim(), g.Metric)
		if n == 1 {
			// Unsharded: serve the prebuilt graph exactly as loaded.
			ixs = []*core.Index{core.New(g, opts)}
		} else {
			// A monolithic index cannot be split edge-for-edge; partition
			// its vectors and rebuild each shard's base graph.
			log.Printf("resharding prebuilt index into %d shards (per-shard base graphs rebuilt with -m/-efc)", n)
			ixs = buildShards(g.Vectors, n, hnsw.Config{M: *m, EFConstruction: *efc, Metric: g.Metric, Seed: 7}, opts)
		}
	case *basePath != "":
		base, err := dataset.LoadMatrix(*basePath)
		if err != nil {
			log.Printf("load base: %v", err)
			return 1
		}
		metric, err := parseMetric(*metricName)
		if err != nil {
			log.Print(err)
			return 1
		}
		start := time.Now()
		ixs = buildShards(base, n, hnsw.Config{M: *m, EFConstruction: *efc, Metric: metric, Seed: 7}, opts)
		log.Printf("built HNSW base over %d vectors in %d shard(s) in %s", base.Rows(), n, time.Since(start).Round(time.Millisecond))
	default:
		log.Print("one of -index, -base, or a non-empty -snapshot-dir is required")
		return 1
	}

	fixCfg := fixerSettings{
		opts: opts, batch: *batch, sample: *sample, autofix: *autofix,
		oplog: *oplog, snapEvery: *snapEvery, snapOps: *snapOps,
	}
	fixers := fixCfg.build(stores, ixs, fixerReg)
	if len(stores) > 0 && !*oplog {
		log.Print("op log disabled (-oplog=false): mutations between snapshots will not survive a crash")
	}

	// Compressed serving: prefer the recovered sidecar (attach re-encodes
	// only the WAL-replayed tail against the frozen codebooks — codes stay
	// bit-identical across the crash); train only when no generation has
	// one or the sidecar cannot describe the recovered graph.
	pqCfg := pqSettings{on: *pqOn, m: *pqM, ks: *pqKS, rerank: *pqRerank, tier: *pqTier}
	if pqCfg.on {
		if err := wirePQ(fixers, stores, pqCfg, recovered); err != nil {
			log.Print(err)
			return 1
		}
	}

	// Seal startup state into a fresh generation per shard: recovery
	// never appends to a log that might end in a torn record, and a
	// fresh dir gets its first durable snapshot before serving a single
	// request. Sealing after PQ enable means the first generation already
	// carries the quantizer sidecar.
	if len(stores) > 0 {
		for i, f := range fixers {
			if err := f.Snapshot(); err != nil {
				log.Printf("shard %d: initial snapshot: %v", i, err)
				return 1
			}
		}
	}
	group, err := shard.NewGroup(fixers)
	if err != nil {
		log.Printf("assemble shard group: %v", err)
		return 1
	}

	s := server.NewSharded(group)
	if len(stores) > 0 {
		// Closures load the current group: a live reshard swaps it, and
		// snapshots must land on the topology actually serving.
		s.SnapshotFunc = func() error { return s.Group().Snapshot() }
		// Any persisted server can feed followers: the replication
		// endpoints read only the store, never the fixers' locks.
		s.SetStores(stores)
	}
	var replicaSet *replica.Set
	if *selfReplica {
		if len(stores) == 0 {
			log.Print("-self-replica needs -snapshot-dir (replicas tail the store's op log)")
			return 1
		}
		reps := make([]*replica.Replica, len(stores))
		rr := make([]shard.ReadReplica, len(stores))
		for i, st := range stores {
			reps[i] = replica.New(replica.StoreSource{St: st}, replica.Config{
				Shard: i, Opts: opts, LagMax: *replicaLagMax, Poll: *replicaPoll,
				Logf: log.Printf,
			})
			rr[i] = reps[i]
			if r := fixerReg(i); r != nil {
				reps[i].RegisterMetrics(r)
			}
		}
		replicaSet, err = replica.NewSet(reps)
		if err != nil {
			log.Printf("assemble replica set: %v", err)
			return 1
		}
		pol := shard.FailoverPolicy{
			After: *failoverAfter,
			// A shard whose durability already failed is known-bad: route
			// its reads to the replica immediately, no hedge delay.
			Unhealthy: func(sh int) bool { return group.Fixer(sh).Degraded() },
		}
		if err := group.SetReplicas(rr, pol); err != nil {
			log.Printf("attach replicas: %v", err)
			return 1
		}
		s.Replicas = replicaSet
		log.Printf("self-replica enabled: %d per-shard read replicas, failover after %s, lag max %d bytes",
			len(reps), *failoverAfter, *replicaLagMax)
	}
	if *maxInflight > 0 {
		s.Admission = admission.New(admission.Config{Capacity: *maxInflight, QueueDepth: *queueDepth})
	}
	s.SearchTimeout = *searchTimeout
	s.EFFloor = *efFloor
	if *adaptiveEF || *answerCacheSize > 0 || *augmentRate > 0 {
		if *augmentRate < 0 || *augmentRate > 1 {
			log.Printf("-augment-rate must be in 0..1, got %g", *augmentRate)
			return 1
		}
		gm := ixs[0].G.Metric
		var adaptive *policy.Adaptive
		if *adaptiveEF {
			// Calibration searches run sequentially within a shard fan-out
			// (parallel 1): they are background work and should not steal
			// cores from serving, which admission gating alone can't ensure.
			adaptive = policy.NewAdaptive(group.Dim(), policy.AdaptiveConfig{Metric: gm, Seed: 11},
				func(q []float32, k, ef int) []graph.Result {
					res, _ := s.Group().SearchCtx(context.Background(), q, k, ef, 1)
					return res
				})
		}
		augmenter := policy.NewAugmenter(policy.AugmentConfig{
			Rate: *augmentRate, Sigma: *augmentSigma,
			Normalize: gm == vec.Cosine, Seed: 13,
		})
		var acquire func() (func(), bool)
		if s.Admission != nil {
			adm := s.Admission
			acquire = func() (func(), bool) { return adm.TryAcquire(adm.FixCost(1)) }
		}
		eng := policy.NewEngine(policy.NewCache(*answerCacheSize), adaptive, augmenter,
			func(qs *vec.Matrix) int { return s.Group().RecordSynthetic(qs) }, acquire)
		s.EnablePolicy(eng)
		log.Printf("policy layer enabled: adaptive-ef=%v answer-cache-size=%d augment-rate=%g",
			*adaptiveEF, *answerCacheSize, *augmentRate)
	}

	// Background repair runs behind a restartable wrapper so the reshard
	// cutover can quiesce it and restart it on the post-split topology.
	maint := &maintenance{
		s: s, interval: *interval, legacy: *repairMode == "interval",
		repairCfg: repair.Config{
			Interval:    *interval,
			MaxInterval: *repairMaxInterval,
			ThetaHi:     *repairThetaHi,
			ThetaLo:     *repairThetaLo,
			Dwell:       *repairDwell,
			MinBatch:    *repairMinBatch,
		},
	}

	// Live resharding needs the stores (the split is durable-first) and
	// owns the whole serving-stack swap; wire before EnableMetrics so the
	// ngfix_reshard_* families register.
	var mgr *reshardManager
	if len(stores) > 0 {
		if *selfReplica {
			// Replicas tail specific parent stores; retiring those under a
			// running replica set is not supported yet.
			s.ReshardFunc = func() (int, int, error) {
				return 0, 0, errors.New("live resharding with -self-replica is not supported; restart without it to reshard")
			}
		} else {
			asm := &assembler{s: s, maint: maint, adm: s.Admission, reg: reg, fix: fixCfg, pq: pqCfg}
			mgr = &reshardManager{
				s: s, asm: asm, maint: maint,
				root: *snapDir, opts: opts, layout: layout, stores: stores,
			}
			if s.Admission != nil {
				mgr.acquire = s.Admission.TryAcquire
			}
			s.ReshardFunc = mgr.Start
			s.ReshardProgress = mgr.Progress
		}
	}
	if reg != nil {
		s.EnableMetrics(reg, shardRegs...) // also wires the admission controller's families
	}
	if *slowQueryMS > 0 {
		s.SlowQueries = &obs.SlowQueryLog{
			Threshold: time.Duration(*slowQueryMS) * time.Millisecond,
			Logf:      log.Printf,
		}
	}

	// The pprof mux wraps the API handler so profiling never rides on the
	// DefaultServeMux (whose other registrations we don't control).
	var handler http.Handler = s
	if *pprofOn {
		top := http.NewServeMux()
		top.HandleFunc("/debug/pprof/", pprof.Index)
		top.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		top.HandleFunc("/debug/pprof/profile", pprof.Profile)
		top.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		top.HandleFunc("/debug/pprof/trace", pprof.Trace)
		top.Handle("/", s)
		handler = top
		log.Print("pprof enabled on /debug/pprof/")
	}

	// --- Lifecycle: configured http.Server, signal-driven graceful
	// shutdown, context-stopped background fixer.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	maint.base = ctx
	if mgr != nil {
		mgr.base = ctx // shutdown cancels ctx, aborting any live reshard
	}

	if replicaSet != nil {
		go replicaSet.Run(ctx)
	}

	if *interval > 0 {
		if !maint.legacy {
			fleet := maint.buildFleet(group, s.Admission, fixerReg)
			s.SetRepair(fleet)
			maint.fleet = fleet
		}
		maint.start()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	log.Printf("serving on %s (shards %d, fix batch %d, autofix %v, interval %s, snapshots %v)",
		ln.Addr(), n, *batch, *autofix, *interval, len(stores) > 0)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.SetReady(true)

	select {
	case err := <-errCh:
		log.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills hard

	// Drain: stop advertising readiness, finish in-flight requests, and
	// let any live reshard observe the canceled context and abort.
	log.Printf("shutdown signal received, draining (timeout %s)", *drainTimeout)
	s.StartDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if mgr != nil {
		mgr.Await(shutCtx)
	}

	// Fold any still-pending recorded queries into the graph, then make
	// the final state durable. Re-read group and stores: a reshard may
	// have swapped both since startup.
	finalGroup := s.Group()
	finalStores := s.Stores()
	if rep, err := finalGroup.FixPendingChecked(); err != nil {
		log.Printf("final fix: %v", err)
	} else if rep.Queries > 0 {
		log.Printf("final fix: %d queries, +%d edges", rep.Queries, rep.NGFixEdges+rep.RFixEdges)
	}
	if len(finalStores) > 0 {
		if err := finalGroup.Snapshot(); err != nil {
			log.Printf("final snapshot: %v", err)
			return 1
		}
		gens := make([]string, len(finalStores))
		for i, st := range finalStores {
			if err := st.Close(); err != nil {
				log.Printf("close store shard %d: %v", i, err)
				return 1
			}
			gens[i] = strconv.FormatUint(st.Generation(), 10)
		}
		log.Printf("final snapshot written (generation %s)", strings.Join(gens, ","))
	}
	if mgr != nil {
		mgr.CloseRetired()
	}
	log.Print("shutdown complete")
	return 0
}

// fixerSettings is the flag-derived online-fixer wiring, kept as a value
// because the reshard assembler replays it for every post-split child.
type fixerSettings struct {
	opts               core.Options
	batch, sample      int
	autofix            bool
	oplog              bool
	snapEvery, snapOps int
}

// build wraps each index in an online fixer wired to its store's WAL
// (or the snapshot-only shim with -oplog=false) and its shard's metric
// registry. stores may be empty (in-memory serving).
func (c fixerSettings) build(stores []*persist.Store, ixs []*core.Index, regAt func(int) *obs.Registry) []*core.OnlineFixer {
	fixers := make([]*core.OnlineFixer, len(ixs))
	for i, ix := range ixs {
		var wal core.WAL
		if len(stores) > 0 {
			if c.oplog {
				wal = stores[i]
			} else {
				wal = snapshotOnly{stores[i]}
			}
		}
		fixers[i] = core.NewOnlineFixer(ix, core.OnlineConfig{
			BatchSize: c.batch, SampleEvery: c.sample, AutoFix: c.autofix,
			WAL:                  wal,
			SnapshotEveryBatches: c.snapEvery, SnapshotEveryMutations: c.snapOps,
			Metrics: regAt(i),
		})
	}
	return fixers
}

// pqSettings is the flag-derived compressed-serving wiring.
type pqSettings struct {
	on            bool
	m, ks, rerank int
	tier          bool
}

// wirePQ enables compressed serving on every fixer, preferring the
// store's sealed sidecar when preferSidecar (recovery and post-reshard
// children: codes stay bit-identical, no retraining) and training fresh
// codebooks only when there is none or it cannot describe the graph.
func wirePQ(fixers []*core.OnlineFixer, stores []*persist.Store, cfg pqSettings, preferSidecar bool) error {
	for i, f := range fixers {
		pcfg := core.PQConfig{M: cfg.m, KS: cfg.ks, RerankFactor: cfg.rerank}
		if len(stores) > 0 && cfg.tier {
			pcfg.TierPath = filepath.Join(stores[i].Dir(), "vectors.tier")
		}
		attached := false
		if preferSidecar && len(stores) > 0 {
			switch q, err := stores[i].LoadPQ(); {
			case err == nil:
				if aerr := f.AttachPQ(q, pcfg); aerr != nil {
					log.Printf("shard %d: pq sidecar rejected (%v); retraining", i, aerr)
				} else {
					attached = true
				}
			case errors.Is(err, persist.ErrNoPQ):
				// Sealed without PQ — train below.
			default:
				log.Printf("shard %d: pq sidecar unreadable (%v); retraining", i, err)
			}
		}
		if !attached {
			if err := f.EnablePQ(pcfg); err != nil {
				return fmt.Errorf("shard %d: enable pq: %w", i, err)
			}
		}
		st, _ := f.PQStats()
		log.Printf("shard %d: pq serving %s (m=%d ks=%d rerank=%dx): resident %d bytes vs %d full-precision",
			i, map[bool]string{true: "recovered", false: "trained"}[attached],
			st.M, st.KS, st.Rerank, st.ResidentBytes, st.FullVectorBytes)
	}
	return nil
}

// maintenance owns the background repair lifecycle so a reshard can
// quiesce it for the cutover window and restart it — on whatever group
// is serving by then. Adaptive mode runs the controller fleet (swapped
// per topology via setFleet); legacy interval mode runs the group's
// fixed cadence loop.
type maintenance struct {
	s         *server.Server
	interval  time.Duration
	legacy    bool // -repair-mode=interval
	repairCfg repair.Config
	base      context.Context

	mu     sync.Mutex
	fleet  *repair.Fleet
	cancel context.CancelFunc
	done   chan struct{}
}

// buildFleet creates one adaptive controller per shard of grp, metrics
// registered on its shard's registry. Nil in legacy mode or when
// background repair is off.
func (m *maintenance) buildFleet(grp *shard.Group, adm *admission.Controller, regAt func(int) *obs.Registry) *repair.Fleet {
	if m.interval <= 0 || m.legacy {
		return nil
	}
	ctls := make([]*repair.Controller, grp.Shards())
	for i := range ctls {
		ctls[i] = repair.New(i, grp.Fixer(i), adm, m.repairCfg)
		if r := regAt(i); r != nil {
			ctls[i].RegisterMetrics(r)
		}
	}
	return repair.NewFleet(ctls...)
}

// setFleet swaps in the post-reshard fleet the next start will run.
func (m *maintenance) setFleet(f *repair.Fleet) {
	m.mu.Lock()
	m.fleet = f
	m.mu.Unlock()
}

// start launches background repair for the current serving group; a
// no-op when repair is off or already running.
func (m *maintenance) start() {
	if m.interval <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(m.base)
	done := make(chan struct{})
	if m.legacy {
		grp := m.s.Group()
		go func() {
			defer close(done)
			grp.RunBackground(ctx, m.interval, log.Printf)
		}()
	} else if m.fleet != nil {
		fleet := m.fleet
		go func() {
			defer close(done)
			fleet.Run(ctx, log.Printf)
		}()
	} else {
		cancel()
		return
	}
	m.cancel, m.done = cancel, done
}

// stop halts background repair and waits for its loops to exit — the
// reshard cutover's quiesce. No-op when not running.
func (m *maintenance) stop() {
	m.mu.Lock()
	cancel, done := m.cancel, m.done
	m.cancel, m.done = nil, nil
	m.mu.Unlock()
	if cancel == nil {
		return
	}
	cancel()
	<-done
}

// assembler rebuilds the serving layer for a post-split topology — the
// same wiring startup does, replayed over the child stores and indexes:
// fixers with WAL and snapshot cadence, per-shard telemetry registries,
// PQ attach from the sidecars the coordinator sealed, and a fresh repair
// fleet. Assemble runs pre-commit (a failure aborts the reshard);
// Install runs post-commit and flips every serving-path pointer.
type assembler struct {
	s     *server.Server
	maint *maintenance
	adm   *admission.Controller
	reg   *obs.Registry // global registry; nil with -metrics=false
	fix   fixerSettings
	pq    pqSettings

	// Staged between Assemble and Install by the single reshard run.
	regs  []*obs.Registry
	fleet *repair.Fleet
}

func (a *assembler) Assemble(stores []*persist.Store, ixs []*core.Index) (*shard.Group, error) {
	n := len(stores)
	var regs []*obs.Registry
	regAt := func(int) *obs.Registry { return nil }
	if a.reg != nil {
		// Post-split is always multi-shard, so children get labeled
		// registries even when the parent ran unlabeled single-shard.
		regs = make([]*obs.Registry, n)
		for i := range regs {
			regs[i] = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
		}
		regAt = func(i int) *obs.Registry { return regs[i] }
		for i, st := range stores {
			st.RegisterMetrics(regs[i])
		}
	}
	fixers := a.fix.build(stores, ixs, regAt)
	if a.pq.on {
		if err := wirePQ(fixers, stores, a.pq, true); err != nil {
			return nil, err
		}
	}
	grp, err := shard.NewGroup(fixers)
	if err != nil {
		return nil, err
	}
	a.regs = regs
	a.fleet = a.maint.buildFleet(grp, a.adm, regAt)
	return grp, nil
}

func (a *assembler) Install(g *shard.Group, stores []*persist.Store) {
	a.s.SwapGroup(g)
	a.s.SetStores(stores)
	a.s.SetShardRegistries(a.regs...)
	a.s.SetRepair(a.fleet)
	a.maint.setFleet(a.fleet)
}

// reshardManager serializes live resharding behind POST /v1/reshard:
// one run at a time, finished runs' totals folded into Progress so the
// ngfix_reshard_* counter families stay monotonic across consecutive
// doublings, and retired parent stores closed at shutdown (straggler
// requests may briefly hold them after a cutover).
type reshardManager struct {
	s     *server.Server
	asm   *assembler
	maint *maintenance
	root  string
	opts  core.Options
	// acquire throttles streaming/tailing work through admission.
	acquire func(cost int) (release func(), ok bool)
	// base is the process-lifetime context; shutdown cancels it, which
	// aborts a live reshard back to the old topology.
	base context.Context

	mu      sync.Mutex
	running bool
	cur     *reshard.Resharder
	layout  persist.Layout
	stores  []*persist.Store
	retired []*persist.Store
	acc     reshard.Progress // finished runs' counter totals
}

// Start kicks off one N→2N split in the background and reports the
// topology change, or ErrReshardInProgress while one is running.
func (m *reshardManager) Start() (from, to int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return 0, 0, server.ErrReshardInProgress
	}
	if m.cur != nil {
		// Fold the finished run into the monotonic totals before its
		// Progress is replaced by the new run's.
		p := m.cur.Progress()
		m.acc.RowsStreamed += p.RowsStreamed
		m.acc.OpsTailed += p.OpsTailed
		m.acc.OpsDiscarded += p.OpsDiscarded
		m.acc.Resyncs += p.Resyncs
		m.acc.CutoverAttempts += p.CutoverAttempts
		m.cur = nil
	}
	layout, stores := m.layout, m.stores
	r, err := reshard.New(reshard.Config{
		Root: m.root, Stores: stores, Layout: layout,
		Opts:    m.opts,
		Group:   m.s.Group(),
		Acquire: m.acquire,
		Quiesce: func() func() {
			m.maint.stop()
			return m.maint.start
		},
		Assemble: m.asm.Assemble,
		Install:  m.asm.Install,
		Logf:     log.Printf,
	})
	if err != nil {
		return 0, 0, err
	}
	m.cur, m.running = r, true
	go m.drive(r, layout, stores)
	return layout.Shards, 2 * layout.Shards, nil
}

func (m *reshardManager) drive(r *reshard.Resharder, old persist.Layout, oldStores []*persist.Store) {
	err := r.Run(m.base)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running = false
	if err != nil {
		log.Printf("reshard: %v", err)
		return
	}
	m.layout = persist.Layout{Shards: 2 * old.Shards, Epoch: old.Epoch + 1}
	m.stores = m.s.Stores() // Install swapped these to the children
	m.retired = append(m.retired, oldStores...)
}

// Progress is the /v1/stats and metrics view: the current (or most
// recent) run's counters plus every earlier run's totals.
func (m *reshardManager) Progress() reshard.Progress {
	m.mu.Lock()
	cur, acc, layout := m.cur, m.acc, m.layout
	m.mu.Unlock()
	p := reshard.Progress{State: reshard.StateIdle, FromShards: layout.Shards, ToShards: 2 * layout.Shards}
	if cur != nil {
		p = cur.Progress()
	}
	p.RowsStreamed += acc.RowsStreamed
	p.OpsTailed += acc.OpsTailed
	p.OpsDiscarded += acc.OpsDiscarded
	p.Resyncs += acc.Resyncs
	p.CutoverAttempts += acc.CutoverAttempts
	return p
}

// Await blocks until no reshard is running or ctx expires. The shutdown
// path calls it after canceling base, so a live run is already aborting.
func (m *reshardManager) Await(ctx context.Context) {
	for {
		m.mu.Lock()
		running := m.running
		m.mu.Unlock()
		if !running {
			return
		}
		select {
		case <-ctx.Done():
			log.Print("shutdown: reshard still winding down after the drain window")
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// CloseRetired closes parent stores retired by committed reshards.
// Deferred to shutdown because straggler requests that captured the old
// group may still read them briefly after a cutover.
func (m *reshardManager) CloseRetired() {
	m.mu.Lock()
	retired := m.retired
	m.retired = nil
	m.mu.Unlock()
	for _, st := range retired {
		st.Close()
	}
}

// runReshardCLI is the offline -reshard mode: split every shard of a
// quiesced snapshot directory in two and exit. Same coordinator as the
// live path, minus a serving group — the WALs are static, so streaming
// catches up immediately and there is nothing to pause or install.
func runReshardCLI(root string, flagShards int, flagSet bool, opts core.Options) int {
	if root == "" {
		log.Print("-reshard needs -snapshot-dir (it doubles an existing on-disk topology)")
		return 1
	}
	layout, err := persist.ResolveLayout(nil, root, flagShards, flagSet)
	if err != nil {
		log.Print(err)
		return 1
	}
	stores, err := persist.OpenShardedAt(root, layout.Shards, layout.Epoch, persist.Options{})
	if err != nil {
		log.Printf("open snapshot dir: %v", err)
		return 1
	}
	defer func() {
		for _, st := range stores {
			st.Close()
		}
	}()
	for i, st := range stores {
		if !st.HasState() {
			log.Printf("shard %d of %s holds no state to reshard (build or serve into it first)", i, root)
			return 1
		}
	}
	r, err := reshard.New(reshard.Config{
		Root: root, Stores: stores, Layout: layout, Opts: opts, Logf: log.Printf,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := r.Run(ctx); err != nil {
		log.Printf("reshard: %v", err)
		return 1
	}
	p := r.Progress()
	log.Printf("reshard complete: %d→%d shards (epoch %d), %d rows streamed",
		layout.Shards, 2*layout.Shards, layout.Epoch+1, p.RowsStreamed)
	return 0
}

// followerConfig carries the flags the follower mode needs.
type followerConfig struct {
	target        string // leader URL or snapshot directory
	shards        int
	shardsFlagSet bool
	opts          core.Options
	lagMax        int64
	poll          time.Duration
	addr          string
	reg           *obs.Registry
	drainTimeout  time.Duration
}

// runFollower serves -replica-of: one read replica per leader shard,
// bootstrapped from the leader's snapshots and tailing its op logs,
// behind the read-only follower HTTP surface. Searches answer with
// "stale": true; /readyz holds 503 until every shard replica is
// bootstrapped and within -replica-lag-max.
func runFollower(cfg followerConfig) int {
	n := cfg.shards
	epoch := 0
	overHTTP := strings.HasPrefix(cfg.target, "http://") || strings.HasPrefix(cfg.target, "https://")
	if !overHTTP {
		// A leader directory pins its shard count and epoch via the
		// manifest. Peek, don't resolve: the leader owns that tree, and a
		// read-only follower must never GC a reshard in flight there.
		l, err := persist.PeekLayout(nil, cfg.target, cfg.shards, cfg.shardsFlagSet)
		if err != nil {
			log.Print(err)
			return 1
		}
		n, epoch = l.Shards, l.Epoch
	}
	if n < 1 {
		log.Printf("-shards must be at least 1, got %d", n)
		return 1
	}

	reps := make([]*replica.Replica, n)
	regs := make([]*obs.Registry, 0, n+1)
	if cfg.reg != nil {
		regs = append(regs, cfg.reg)
	}
	for i := range reps {
		var src replica.Source
		if overHTTP {
			src = replica.HTTPSource{Base: strings.TrimRight(cfg.target, "/"), Shard: i}
		} else if n == 1 && epoch == 0 {
			src = replica.DirSource{Dir: cfg.target}
		} else {
			src = replica.DirSource{Dir: persist.ShardDirAt(cfg.target, epoch, i)}
		}
		reps[i] = replica.New(src, replica.Config{
			Shard: i, Opts: cfg.opts, LagMax: cfg.lagMax, Poll: cfg.poll,
			Logf: log.Printf,
		})
		if cfg.reg != nil {
			r := cfg.reg
			if n > 1 {
				r = obs.NewRegistry(obs.Label{Name: "shard", Value: strconv.Itoa(i)})
				regs = append(regs, r)
			}
			reps[i].RegisterMetrics(r)
		}
	}
	set, err := replica.NewSet(reps)
	if err != nil {
		log.Printf("assemble replica set: %v", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go set.Run(ctx)

	fol := server.NewFollower(set)
	if cfg.reg != nil {
		fol.EnableMetrics(regs...)
	}
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           fol,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		log.Printf("listen: %v", err)
		return 1
	}
	log.Printf("following %s on %s (%d shard replica(s), epoch %d, lag max %d bytes)", cfg.target, ln.Addr(), n, epoch, cfg.lagMax)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		log.Printf("serve: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutdown signal received, draining (timeout %s)", cfg.drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	log.Print("shutdown complete")
	return 0
}

// buildShards partitions base row-interleaved (row i → shard i%n, so
// global id == original row index), builds each shard's HNSW base
// graph, and wraps the bottoms as fixable indexes. n==1 degenerates to
// one graph over the whole matrix — identical to the pre-sharding path.
func buildShards(base *vec.Matrix, n int, cfg hnsw.Config, opts core.Options) []*core.Index {
	parts := shard.Partition(base, n)
	ixs := make([]*core.Index, len(parts))
	for i, p := range parts {
		ixs[i] = core.New(hnsw.Build(p, cfg).Bottom(), opts)
	}
	return ixs
}

// snapshotOnly is the -oplog=false durability mode: snapshots still run
// on their cadence, per-op journaling is dropped.
type snapshotOnly struct{ st *persist.Store }

func (snapshotOnly) LogInsert(v []float32) error                   { return nil }
func (snapshotOnly) LogDelete(id uint32) error                     { return nil }
func (snapshotOnly) LogFixEdges(updates []graph.ExtraUpdate) error { return nil }
func (s snapshotOnly) Snapshot(g *graph.Graph) error               { return s.st.Snapshot(g) }
func (s snapshotOnly) SnapshotPQ(g *graph.Graph, q *pq.Quantizer) error {
	return s.st.SnapshotPQ(g, q)
}

func parseMetric(s string) (vec.Metric, error) {
	switch strings.ToLower(s) {
	case "l2", "euclidean":
		return vec.L2, nil
	case "ip", "innerproduct", "dot":
		return vec.InnerProduct, nil
	case "cos", "cosine":
		return vec.Cosine, nil
	}
	return 0, fmt.Errorf("unknown metric %q", s)
}
