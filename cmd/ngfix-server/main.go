// Command ngfix-server serves an NGFix index over HTTP with continuous
// online fixing: the index repairs itself with the query stream it
// observes, the paper's production deployment story.
//
// Usage:
//
//	ngfix-server -base base.ngfx -metric cosine -addr :8080 -autofix
//	ngfix-server -index prebuilt.ngig -addr :8080
//
// Endpoints: POST /v1/{search,insert,delete,fix,purge}, GET /v1/stats,
// GET /healthz. See internal/server for the JSON shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"strings"
	"time"

	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/graph"
	"ngfix/internal/hnsw"
	"ngfix/internal/server"
	"ngfix/internal/vec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "prebuilt index file (from ngfix-build)")
	basePath := flag.String("base", "", "base vectors file (builds an HNSW base graph at startup)")
	metricName := flag.String("metric", "l2", "metric when building from -base: l2 | ip | cosine")
	m := flag.Int("m", 16, "HNSW M when building from -base")
	efc := flag.Int("efc", 200, "HNSW efConstruction when building from -base")
	lex := flag.Int("lex", 48, "extra-degree budget for online fixing")
	batch := flag.Int("fix-batch", 128, "queries per online fix batch")
	sample := flag.Int("fix-sample", 1, "record every n-th query for fixing")
	autofix := flag.Bool("autofix", false, "fix synchronously when the batch fills (otherwise POST /v1/fix or use -fix-interval)")
	interval := flag.Duration("fix-interval", 0, "background fixing period (0 disables)")
	flag.Parse()

	var g *graph.Graph
	switch {
	case *indexPath != "":
		var err error
		g, err = graph.Load(*indexPath)
		if err != nil {
			log.Fatalf("load index: %v", err)
		}
		log.Printf("loaded index: %d vectors, dim %d, metric %s", g.Len(), g.Dim(), g.Metric)
	case *basePath != "":
		base, err := dataset.LoadMatrix(*basePath)
		if err != nil {
			log.Fatalf("load base: %v", err)
		}
		metric, err := parseMetric(*metricName)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		g = hnsw.Build(base, hnsw.Config{M: *m, EFConstruction: *efc, Metric: metric, Seed: 7}).Bottom()
		log.Printf("built HNSW base over %d vectors in %s", base.Rows(), time.Since(start).Round(time.Millisecond))
	default:
		log.Fatal("one of -index or -base is required")
	}

	ix := core.New(g, core.Options{LEx: *lex})
	fixer := core.NewOnlineFixer(ix, core.OnlineConfig{
		BatchSize: *batch, SampleEvery: *sample, AutoFix: *autofix,
	})
	if *interval > 0 {
		go func() {
			for range time.Tick(*interval) {
				if rep := fixer.FixPending(); rep.Queries > 0 {
					log.Printf("online fix: %d queries, +%d edges", rep.Queries, rep.NGFixEdges+rep.RFixEdges)
				}
			}
		}()
	}

	log.Printf("serving on %s (fix batch %d, autofix %v, interval %s)", *addr, *batch, *autofix, *interval)
	if err := http.ListenAndServe(*addr, server.New(fixer)); err != nil {
		log.Fatal(err)
	}
}

func parseMetric(s string) (vec.Metric, error) {
	switch strings.ToLower(s) {
	case "l2", "euclidean":
		return vec.L2, nil
	case "ip", "innerproduct", "dot":
		return vec.InnerProduct, nil
	case "cos", "cosine":
		return vec.Cosine, nil
	}
	return 0, fmt.Errorf("unknown metric %q", s)
}
