package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ngfix/internal/dataset"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/persist"
	"ngfix/internal/server"
	"ngfix/internal/vec"
)

// TestLiveReshardEndToEnd is the zero-downtime acceptance test for
// POST /v1/reshard: a 2-shard server keeps answering searches (no 5xx,
// ever) and accepting inserts while it splits live into 4 shards, the
// committed topology survives a restart from the directory alone, and
// the retired parent directories are gone.
func TestLiveReshardEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	const baseN = 600
	d := dataset.Generate(dataset.Config{
		Name: "reshard-e2e", N: baseN, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 17,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(work, "state")

	// -fix-interval makes the repair fleet run, so the cutover also has
	// to quiesce and restart background maintenance on the new topology.
	p := startServer(t, bin, "-index", idx, "-snapshot-dir", snapDir,
		"-shards", "2", "-fix-batch", "16", "-fix-interval", "150ms")
	if st := p.stats(t); st.Shards != 2 {
		t.Fatalf("pre-reshard shards = %d, want 2", st.Shards)
	}

	// Continuous search traffic for the whole reshard. Stale or degraded
	// answers are acceptable mid-cutover; errors and 5xx are not.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var searches, emptyResults int64
	var trafficErr atomic.Value // first failure, as a string
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 10 * time.Second}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			req := server.SearchRequest{
				Vector: d.History.Row(i % d.History.Rows()),
				K:      server.IntPtr(3), EF: server.IntPtr(40),
			}
			if err := json.NewEncoder(&buf).Encode(req); err != nil {
				trafficErr.CompareAndSwap(nil, err.Error())
				return
			}
			resp, err := client.Post(p.base+"/v1/search", "application/json", &buf)
			if err != nil {
				trafficErr.CompareAndSwap(nil, "search transport error: "+err.Error())
				return
			}
			var sr server.SearchResponse
			decErr := json.NewDecoder(resp.Body).Decode(&sr)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				trafficErr.CompareAndSwap(nil,
					fmt.Sprintf("search status %d during reshard", resp.StatusCode))
				return
			}
			if decErr != nil {
				trafficErr.CompareAndSwap(nil, "search decode: "+decErr.Error())
				return
			}
			atomic.AddInt64(&searches, 1)
			if len(sr.Results) == 0 {
				atomic.AddInt64(&emptyResults, 1)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Kick off the split. 202 with the topology change it started.
	resp, err := http.Post(p.base+"/v1/reshard", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr server.ReshardResponse
	err = json.NewDecoder(resp.Body).Decode(&rr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/reshard status %d, want 202", resp.StatusCode)
	}
	if err != nil || rr.From != 2 || rr.To != 4 {
		t.Fatalf("reshard response %+v (err %v), want from=2 to=4", rr, err)
	}

	// Inserts keep landing while the split streams and cuts over; each
	// is distinctive enough to be its own nearest neighbor later.
	type insRec struct {
		id  uint32
		vec []float32
	}
	var insertedRecs []insRec
	insertOne := func() {
		t.Helper()
		v := make([]float32, d.Base.Dim())
		v[0] = 3000 + float32(len(insertedRecs))*10
		v[1] = -3000 - float32(len(insertedRecs))*10
		var ir server.InsertResponse
		p.post(t, "/v1/insert", server.InsertRequest{Vector: v}, &ir)
		insertedRecs = append(insertedRecs, insRec{id: ir.ID, vec: v})
	}

	deadline := time.Now().Add(90 * time.Second)
	var final server.StatsResponse
	for {
		st := p.stats(t)
		if st.Reshard != nil {
			switch st.Reshard.State {
			case "done":
				final = st
			case "failed":
				t.Fatalf("reshard failed: %+v\noutput:\n%s", st.Reshard, p.out.String())
			}
		}
		if final.Reshard != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reshard never finished; last stats %+v\noutput:\n%s", st.Reshard, p.out.String())
		}
		insertOne()
		time.Sleep(20 * time.Millisecond)
	}
	// A couple more on the committed 4-shard topology.
	insertOne()
	insertOne()

	close(stop)
	wg.Wait()
	if msg := trafficErr.Load(); msg != nil {
		t.Fatalf("search traffic broke during reshard: %s\noutput:\n%s", msg, p.out.String())
	}
	if n := atomic.LoadInt64(&searches); n == 0 {
		t.Fatal("traffic goroutine completed no searches")
	}
	if n := atomic.LoadInt64(&emptyResults); n > 0 {
		t.Fatalf("%d searches returned no results during reshard", n)
	}

	if final.Shards != 4 || len(final.PerShard) != 4 {
		t.Fatalf("post-reshard stats: shards=%d perShard=%d, want 4/4", final.Shards, len(final.PerShard))
	}
	pr := final.Reshard
	if pr.FromShards != 2 || pr.ToShards != 4 || pr.Active {
		t.Fatalf("finished progress %+v, want inactive 2→4", pr)
	}
	if pr.RowsStreamed < baseN {
		t.Fatalf("rowsStreamed = %d, want >= %d (every parent row lands in a child)", pr.RowsStreamed, baseN)
	}
	if pr.CutoverAttempts < 1 {
		t.Fatalf("cutoverAttempts = %d, want >= 1", pr.CutoverAttempts)
	}

	// Every vector inserted mid-reshard is findable on the new topology.
	for _, rec := range insertedRecs {
		var sr server.SearchResponse
		p.post(t, "/v1/search", server.SearchRequest{Vector: rec.vec, K: server.IntPtr(1), EF: server.IntPtr(40)}, &sr)
		if len(sr.Results) == 0 || sr.Results[0].ID != rec.id {
			t.Fatalf("inserted id %d lost across reshard: %+v", rec.id, sr.Results)
		}
	}

	// The exposition reports the finished run on shard="all", and the
	// per-shard families cover all four children.
	mresp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil || mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d err %v", mresp.StatusCode, err)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	metricChecks := []struct {
		key string
		min float64
	}{
		{`ngfix_reshard_state{shard="all",state="done"}`, 1},
		{`ngfix_reshard_rows_streamed_total{shard="all"}`, baseN},
		{`ngfix_reshard_cutover_attempts_total{shard="all"}`, 1},
		{`ngfix_vectors{shard="0"}`, 1},
		{`ngfix_vectors{shard="3"}`, 1},
	}
	for _, c := range metricChecks {
		got, ok := samples[c.key]
		if !ok {
			t.Errorf("missing %s in post-reshard exposition", c.key)
			continue
		}
		if got < c.min {
			t.Errorf("%s = %v, want >= %v", c.key, got, c.min)
		}
	}
	if got, ok := samples[`ngfix_reshard_active{shard="all"}`]; !ok || got != 0 {
		t.Errorf(`ngfix_reshard_active{shard="all"} = %v, %v; want 0 after commit`, got, ok)
	}

	vectorsBefore := p.stats(t).Vectors
	p.terminate(t)

	// Restart from the directory alone: the committed epoch is the only
	// topology recovery can see.
	p2 := startServer(t, bin, "-snapshot-dir", snapDir)
	st2 := p2.stats(t)
	if st2.Shards != 4 {
		t.Fatalf("restart shards = %d, want 4", st2.Shards)
	}
	if st2.Vectors != vectorsBefore {
		t.Fatalf("vectors across restart: %d -> %d", vectorsBefore, st2.Vectors)
	}
	for _, rec := range insertedRecs {
		var sr server.SearchResponse
		p2.post(t, "/v1/search", server.SearchRequest{Vector: rec.vec, K: server.IntPtr(1), EF: server.IntPtr(40)}, &sr)
		if len(sr.Results) == 0 || sr.Results[0].ID != rec.id {
			t.Fatalf("inserted id %d lost across restart: %+v", rec.id, sr.Results)
		}
	}
	p2.terminate(t)

	// On disk: the manifest pins 4 shards at epoch 1, the children live
	// under epoch-1/, and GC reclaimed the retired epoch-0 parents.
	m, ok, err := persist.ReadManifest(nil, snapDir)
	if err != nil || !ok {
		t.Fatalf("ReadManifest: ok=%v err=%v", ok, err)
	}
	if m.Shards != 4 || m.Epoch != 1 {
		t.Fatalf("manifest %+v, want 4 shards at epoch 1", m)
	}
	for i := 0; i < 4; i++ {
		dir := persist.ShardDirAt(snapDir, 1, i)
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			t.Fatalf("child shard dir %s missing: %v", dir, err)
		}
	}
	for _, old := range []string{"shard-0", "shard-1"} {
		if _, err := os.Stat(filepath.Join(snapDir, old)); !os.IsNotExist(err) {
			t.Fatalf("retired parent %s not reclaimed (err %v)", old, err)
		}
	}
}

// TestOfflineReshardCLI covers the maintenance-window path: -reshard
// doubles a stopped server's directory in place and exits, and the next
// plain start serves the new topology with nothing lost.
func TestOfflineReshardCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "reshard-cli", N: 300, NHist: 40, NTest: 5,
		Dim: 8, Clusters: 4, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 23,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(work, "state")

	// Seed a 2-shard tree, mutate it, and stop cleanly.
	p := startServer(t, bin, "-index", idx, "-snapshot-dir", snapDir, "-shards", "2", "-fix-batch", "16")
	v := make([]float32, d.Base.Dim())
	v[0] = 5000
	var ir server.InsertResponse
	p.post(t, "/v1/insert", server.InsertRequest{Vector: v}, &ir)
	before := p.stats(t)
	p.terminate(t)

	// Without a directory the flag is an error, not a no-op.
	if out, err := exec.Command(bin, "-reshard").CombinedOutput(); err == nil {
		t.Fatalf("-reshard without -snapshot-dir succeeded:\n%s", out)
	}

	if out, err := exec.Command(bin, "-reshard", "-snapshot-dir", snapDir).CombinedOutput(); err != nil {
		t.Fatalf("-reshard: %v\n%s", err, out)
	}

	// The directory alone now describes a 4-shard tree.
	p2 := startServer(t, bin, "-snapshot-dir", snapDir)
	st := p2.stats(t)
	if st.Shards != 4 || len(st.PerShard) != 4 {
		t.Fatalf("post-CLI-reshard: shards=%d perShard=%d, want 4/4", st.Shards, len(st.PerShard))
	}
	if st.Vectors != before.Vectors || st.Live != before.Live {
		t.Fatalf("vector counts changed across offline reshard: %d/%d -> %d/%d",
			before.Vectors, before.Live, st.Vectors, st.Live)
	}
	var sr server.SearchResponse
	p2.post(t, "/v1/search", server.SearchRequest{Vector: v, K: server.IntPtr(1), EF: server.IntPtr(40)}, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != ir.ID {
		t.Fatalf("inserted id %d lost across offline reshard: %+v", ir.ID, sr.Results)
	}
	p2.terminate(t)
}
