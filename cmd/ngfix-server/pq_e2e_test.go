package main

import (
	"path/filepath"
	"strings"
	"testing"

	"ngfix/internal/dataset"
	"ngfix/internal/hnsw"
	"ngfix/internal/server"
	"ngfix/internal/vec"
)

// TestPQServeAndRecovery is the memory-tiered serving acceptance test at
// the binary level: start with -pq (training a quantizer at boot), serve
// fused searches that report adc work, mutate, SIGTERM, then restart from
// the snapshot directory alone and verify the quantizer came back from
// the sidecar ("recovered", not retrained) with the compressed view still
// in step with the vectors — including the pre-shutdown insert.
func TestPQServeAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "e2e-pq", N: 400, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 9,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(work, "state")

	// First life: train the quantizer at boot, serve fused, insert.
	p := startServer(t, bin, "-index", idx, "-snapshot-dir", snapDir, "-pq", "-pq-ks", "32")
	if !strings.Contains(p.out.String(), "pq serving trained") {
		t.Fatalf("first life did not train a quantizer; output:\n%s", p.out.String())
	}
	var sr server.SearchResponse
	p.post(t, "/v1/search", server.SearchRequest{Vector: d.TestOOD.Row(1), K: server.IntPtr(5), EF: server.IntPtr(30)}, &sr)
	if len(sr.Results) != 5 || sr.ADC == 0 {
		t.Fatalf("fused search over the binary: %d results, adc=%d", len(sr.Results), sr.ADC)
	}
	var ins server.InsertResponse
	p.post(t, "/v1/insert", server.InsertRequest{Vector: d.TestOOD.Row(0)}, &ins)
	before := p.stats(t)
	if before.PQ == nil || before.PQ.Rows != before.Vectors {
		t.Fatalf("pq stats out of step before shutdown: %+v (vectors %d)", before.PQ, before.Vectors)
	}
	p.terminate(t)

	// The final snapshot must carry the quantizer sidecar — that is what
	// makes the next life an attach instead of a retrain.
	sidecars, err := filepath.Glob(filepath.Join(snapDir, "pq-*.ngpq"))
	if err != nil || len(sidecars) == 0 {
		t.Fatalf("no pq sidecar in %s after shutdown (err %v)", snapDir, err)
	}

	// Second life: nothing but the snapshot directory. The quantizer must
	// attach from the sidecar, and the compressed view must cover the
	// insert from the first life.
	p2 := startServer(t, bin, "-snapshot-dir", snapDir, "-pq", "-pq-ks", "32")
	if !strings.Contains(p2.out.String(), "pq serving recovered") {
		t.Fatalf("second life retrained instead of attaching the sidecar; output:\n%s", p2.out.String())
	}
	after := p2.stats(t)
	if after.PQ == nil {
		t.Fatal("pq stats block missing after recovery")
	}
	if after.PQ.Rows != after.Vectors || after.Vectors != before.Vectors {
		t.Fatalf("recovered compressed view out of step: pq rows %d, vectors %d (want %d)",
			after.PQ.Rows, after.Vectors, before.Vectors)
	}
	var got server.SearchResponse
	p2.post(t, "/v1/search", server.SearchRequest{Vector: d.TestOOD.Row(0), K: server.IntPtr(1), EF: server.IntPtr(30)}, &got)
	if len(got.Results) == 0 || got.Results[0].ID != ins.ID {
		t.Fatalf("recovered fused search lost the inserted vector: %+v (want id %d)", got.Results, ins.ID)
	}
	if got.ADC == 0 {
		t.Fatal("recovered search did not run the fused path")
	}
	p2.terminate(t)
}
