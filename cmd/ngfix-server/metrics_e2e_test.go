package main

import (
	"bytes"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"ngfix/internal/dataset"
	"ngfix/internal/hnsw"
	"ngfix/internal/obs"
	"ngfix/internal/server"
	"ngfix/internal/vec"
)

// TestMetricsEndToEnd runs the real binary and scrapes /metrics like a
// Prometheus server would: the exposition must parse strictly and the
// search, fix-batch, WAL, and admission families must have moved with
// the traffic. Also covers -pprof (profile index answers 200) and
// -metrics=false (404).
func TestMetricsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "obs-e2e", N: 400, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 11,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}

	p := startServer(t, bin, "-index", idx,
		"-snapshot-dir", filepath.Join(work, "state"),
		"-fix-batch", "16", "-pprof")

	const searches = 8
	for qi := 0; qi < searches; qi++ {
		var sr server.SearchResponse
		p.post(t, "/v1/search", server.SearchRequest{Vector: d.History.Row(qi), K: server.IntPtr(5), EF: server.IntPtr(20)}, &sr)
	}
	var ir server.InsertResponse
	p.post(t, "/v1/insert", server.InsertRequest{Vector: d.History.Row(0)}, &ir)
	var fr server.FixResponse
	p.post(t, "/v1/fix", struct{}{}, &fr)
	if fr.Queries == 0 {
		t.Fatal("fix consumed no queries")
	}

	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("content type %q, want %q", ct, obs.ContentType)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	checks := []struct {
		key string
		min float64
	}{
		{`ngfix_search_duration_seconds_count{outcome="ok"}`, searches},
		{"ngfix_search_ndc_count", searches},
		{"ngfix_fix_batches_total", 1},
		{"ngfix_fix_queries_total", float64(fr.Queries)},
		{"ngfix_wal_append_seconds_count", 2}, // insert + fix batch
		{"ngfix_wal_snapshot_seconds_count", 1},
		{`ngfix_admission_admitted_total{shard="all"}`, searches + 2},
		{"ngfix_vectors", 401},
		{"go_goroutines", 1},
	}
	for _, c := range checks {
		got, ok := samples[c.key]
		if !ok {
			t.Errorf("missing %s in exposition", c.key)
			continue
		}
		if got < c.min {
			t.Errorf("%s = %v, want >= %v", c.key, got, c.min)
		}
	}

	// At -shards 1 the exposition stays byte-compatible with pre-sharding
	// dashboards: fixer and store families carry no shard label.
	for _, key := range []string{"ngfix_fix_batches_total", "ngfix_vectors", "ngfix_wal_snapshot_seconds_count"} {
		if _, ok := samples[key]; !ok {
			t.Errorf("single-shard exposition lost unlabeled family %s", key)
		}
	}

	// -pprof wired the profiling mux next to the API.
	pp, err := http.Get(p.base + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", pp.StatusCode)
	}
	p.terminate(t)

	// -metrics=false: the route answers 404 and pprof is absent.
	p2 := startServer(t, bin, "-index", idx, "-metrics=false")
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		r, err := http.Get(p2.base + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s with -metrics=false: status %d, want 404", path, r.StatusCode)
		}
	}
	p2.terminate(t)
}

// TestMetricsShardLabels is the sharded-telemetry gate: at -shards 2
// every core (fixer), persist (WAL/store), and admission family on
// /metrics must name its shard. HTTP-layer and process families are the
// only exemptions — they describe the whole process, not a shard.
func TestMetricsShardLabels(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "obs-shard", N: 400, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 13,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}

	p := startServer(t, bin, "-index", idx,
		"-snapshot-dir", filepath.Join(work, "state"),
		"-shards", "2", "-fix-batch", "16", "-fix-interval", "30s")
	for qi := 0; qi < 4; qi++ {
		var sr server.SearchResponse
		p.post(t, "/v1/search", server.SearchRequest{Vector: d.History.Row(qi), K: server.IntPtr(5), EF: server.IntPtr(20)}, &sr)
	}
	var ir server.InsertResponse
	p.post(t, "/v1/insert", server.InsertRequest{Vector: d.History.Row(0)}, &ir)
	var fr server.FixResponse
	p.post(t, "/v1/fix", struct{}{}, &fr)

	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}

	// Families allowed to omit the shard label: whole-process telemetry.
	processWide := []string{
		"ngfix_search_duration_seconds",
		"ngfix_slow_queries_total",
		"go_", "process_",
	}
	shardless := func(key string) bool {
		for _, p := range processWide {
			if strings.HasPrefix(key, p) {
				return true
			}
		}
		return false
	}
	for key := range samples {
		if shardless(key) {
			continue
		}
		if !strings.Contains(key, `shard="`) {
			t.Errorf("family without shard label at -shards 2: %s", key)
		}
	}

	// Both shards and the shared limiter are individually visible, and the
	// adaptive repair controller (enabled by -fix-interval) exports its
	// per-shard families: mode one-hot, trigger reasons, batch counters.
	for _, key := range []string{
		`ngfix_vectors{shard="0"}`,
		`ngfix_vectors{shard="1"}`,
		`ngfix_wal_snapshot_seconds_count{shard="0"}`,
		`ngfix_wal_snapshot_seconds_count{shard="1"}`,
		`ngfix_admission_admitted_total{shard="all"}`,
		`ngfix_repair_mode{mode="steady",shard="0"}`,
		`ngfix_repair_mode{mode="eager",shard="1"}`,
		`ngfix_repair_triggers_total{reason="interval",shard="0"}`,
		`ngfix_repair_triggers_total{reason="pressure",shard="1"}`,
		`ngfix_repair_batches_total{shard="0"}`,
		`ngfix_repair_deferred_total{shard="1"}`,
		`ngfix_repair_cost_units_total{shard="0"}`,
		`ngfix_repair_unreachable_ewma{shard="1"}`,
		// The reshard coordinator (wired whenever persistence is on)
		// registers under shard="all" and idles until POST /v1/reshard.
		`ngfix_reshard_active{shard="all"}`,
		`ngfix_reshard_state{shard="all",state="idle"}`,
		`ngfix_reshard_rows_streamed_total{shard="all"}`,
		`ngfix_reshard_ops_tailed_total{shard="all"}`,
		`ngfix_reshard_ops_discarded_total{shard="all"}`,
		`ngfix_reshard_cutover_attempts_total{shard="all"}`,
	} {
		if _, ok := samples[key]; !ok {
			t.Errorf("missing %s in sharded exposition", key)
		}
	}
	if got := samples[`ngfix_reshard_state{shard="all",state="idle"}`]; got != 1 {
		t.Errorf(`ngfix_reshard_state{state="idle"} = %v before any reshard, want 1`, got)
	}
	if got := samples[`ngfix_reshard_active{shard="all"}`]; got != 0 {
		t.Errorf(`ngfix_reshard_active = %v before any reshard, want 0`, got)
	}
	p.terminate(t)
}

// TestMetricsPolicyFamilies: with the policy flags on at -shards 2, the
// ngfix_policy_* families appear under shard="all" (the cache and
// calibration are process-global, like the admission limiter) and move
// with traffic — a repeated query lands a cache hit both in the policy
// counters and in the search-duration outcome split.
func TestMetricsPolicyFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "obs-policy", N: 400, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 17,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}

	p := startServer(t, bin, "-index", idx,
		"-shards", "2", "-fix-batch", "16",
		"-adaptive-ef", "-answer-cache-size", "64", "-augment-rate", "1")

	for qi := 0; qi < 4; qi++ {
		var sr server.SearchResponse
		p.post(t, "/v1/search", server.SearchRequest{Vector: d.History.Row(qi), K: server.IntPtr(5), EF: server.IntPtr(20)}, &sr)
	}
	// The exact repeat is the cache hit.
	var hit server.SearchResponse
	p.post(t, "/v1/search", server.SearchRequest{Vector: d.History.Row(0), K: server.IntPtr(5), EF: server.IntPtr(20)}, &hit)
	if hit.Policy != "cache_hit" {
		t.Fatalf("repeat search policy %q, want cache_hit", hit.Policy)
	}

	resp, err := http.Get(p.base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	samples, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	moved := []struct {
		key string
		min float64
	}{
		{`ngfix_policy_cache_hits_total{shard="all"}`, 1},
		{`ngfix_policy_cache_misses_total{shard="all"}`, 4},
		{`ngfix_policy_cache_entries{shard="all"}`, 1},
		{`ngfix_policy_augmented_queries_total{shard="all"}`, 1},
		{`ngfix_search_duration_seconds_count{outcome="cache_hit"}`, 1},
	}
	for _, c := range moved {
		got, ok := samples[c.key]
		if !ok {
			t.Errorf("missing %s in exposition", c.key)
			continue
		}
		if got < c.min {
			t.Errorf("%s = %v, want >= %v", c.key, got, c.min)
		}
	}
	// Registered-at-startup families are present even before they move
	// (calibration is background work and may not have landed yet).
	for _, key := range []string{
		`ngfix_policy_cache_evictions_total{shard="all"}`,
		`ngfix_policy_cache_invalidations_total{shard="all"}`,
		`ngfix_policy_adaptive_ef_count{shard="all"}`,
		`ngfix_policy_adaptive_recalibrations_total{shard="all"}`,
		`ngfix_policy_adaptive_deferrals_total{shard="all"}`,
		`ngfix_policy_augment_injected_total{shard="all"}`,
		`ngfix_policy_augment_rejected_total{shard="all"}`,
	} {
		if _, ok := samples[key]; !ok {
			t.Errorf("missing %s in exposition", key)
		}
	}
	// Every policy family names its (process-global) shard.
	for key := range samples {
		if strings.HasPrefix(key, "ngfix_policy_") && !strings.Contains(key, `shard="all"`) {
			t.Errorf("policy family without shard=\"all\": %s", key)
		}
	}
	p.terminate(t)
}
