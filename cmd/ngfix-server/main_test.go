package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"ngfix/internal/dataset"
	"ngfix/internal/hnsw"
	"ngfix/internal/server"
	"ngfix/internal/vec"
)

// buildServerBinary compiles this command into dir and returns the path.
func buildServerBinary(t *testing.T, dir string) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(dir, "ngfix-server")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort grabs a port from the kernel and releases it for the child
// process to claim.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

type serverProc struct {
	cmd  *exec.Cmd
	base string
	out  *bytes.Buffer
}

func startServer(t *testing.T, bin string, args ...string) *serverProc {
	t.Helper()
	port := freePort(t)
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	var out bytes.Buffer
	cmd := exec.Command(bin, append([]string{"-addr", addr}, args...)...)
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &serverProc{cmd: cmd, base: "http://" + addr, out: &out}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	// Wait for /readyz — the binary only turns ready once the index is
	// loaded (or recovered) and the listener is up.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(p.base + "/readyz")
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				return p
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became ready; output:\n%s", out.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// terminate sends SIGTERM and requires a clean exit within the drain
// window.
func (p *serverProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited non-zero after SIGTERM: %v\noutput:\n%s", err, p.out.String())
		}
	case <-time.After(30 * time.Second):
		p.cmd.Process.Kill()
		t.Fatalf("server did not exit after SIGTERM; output:\n%s", p.out.String())
	}
}

func (p *serverProc) post(t *testing.T, path string, body interface{}, out interface{}) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(p.base+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: status %d", path, resp.StatusCode)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

func (p *serverProc) stats(t *testing.T) server.StatsResponse {
	t.Helper()
	resp, err := http.Get(p.base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestGracefulShutdownAndRecovery is the operational acceptance test:
// serve traffic, learn fix edges from it, mutate the index, SIGTERM the
// process (clean exit required), then restart from nothing but the
// snapshot directory and verify the learned edges and the mutation
// survived.
func TestGracefulShutdownAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "e2e", N: 400, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 9,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(work, "state")

	// First life: seed from -index, learn from traffic, mutate.
	p := startServer(t, bin, "-index", idx, "-snapshot-dir", snapDir, "-fix-batch", "16")
	for qi := 0; qi < 24; qi++ {
		var sr server.SearchResponse
		p.post(t, "/v1/search", server.SearchRequest{Vector: d.History.Row(qi % d.History.Rows()), K: server.IntPtr(5), EF: server.IntPtr(20)}, &sr)
		if len(sr.Results) == 0 {
			t.Fatal("search returned nothing")
		}
	}
	var fr server.FixResponse
	p.post(t, "/v1/fix", struct{}{}, &fr)
	if fr.Queries == 0 {
		t.Fatal("fix batch processed no queries")
	}
	var ins server.InsertResponse
	p.post(t, "/v1/insert", server.InsertRequest{Vector: d.TestOOD.Row(0)}, &ins)
	var del server.DeleteResponse
	p.post(t, "/v1/delete", server.DeleteRequest{ID: 7}, &del)
	if !del.Deleted {
		t.Fatal("delete failed")
	}
	before := p.stats(t)
	if before.ExtraEdges == 0 {
		t.Fatal("no extra edges learned; nothing to verify across restart")
	}
	p.terminate(t)

	// Second life: nothing but the snapshot directory.
	p2 := startServer(t, bin, "-snapshot-dir", snapDir, "-fix-batch", "16")
	after := p2.stats(t)
	if after.ExtraEdges != before.ExtraEdges {
		t.Fatalf("learned fix edges lost across restart: %d -> %d", before.ExtraEdges, after.ExtraEdges)
	}
	if after.Vectors != before.Vectors || after.Live != before.Live {
		t.Fatalf("vector counts differ across restart: %d/%d -> %d/%d",
			before.Vectors, before.Live, after.Vectors, after.Live)
	}
	if after.BaseEdges != before.BaseEdges {
		t.Fatalf("base edges differ across restart: %d -> %d", before.BaseEdges, after.BaseEdges)
	}
	// The recovered index serves, and the restored state is still mutable.
	var sr server.SearchResponse
	p2.post(t, "/v1/search", server.SearchRequest{Vector: d.TestOOD.Row(0), K: server.IntPtr(1), EF: server.IntPtr(20)}, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != ins.ID {
		t.Fatalf("recovered index lost the inserted vector: %+v", sr.Results)
	}
	p2.post(t, "/v1/insert", server.InsertRequest{Vector: d.TestOOD.Row(1)}, &ins)
	p2.terminate(t)

	// Third life: the post-restart insert survived the second shutdown.
	p3 := startServer(t, bin, "-snapshot-dir", snapDir)
	final := p3.stats(t)
	if final.Vectors != after.Vectors+1 {
		t.Fatalf("second-life insert lost: %d vectors, want %d", final.Vectors, after.Vectors+1)
	}
	p3.terminate(t)
}

// TestShardedServeAndRecovery runs the binary at -shards 2: the state
// directory grows shard-<i>/ subdirectories plus a MANIFEST pinning the
// count, stats expose the per-shard breakdown, and a restart with no
// -shards flag at all recovers the same sharded index — the directory,
// not the command line, is the source of truth for the shard count.
func TestShardedServeAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "shard-e2e", N: 400, NHist: 60, NTest: 10,
		Dim: 8, Clusters: 5, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 17,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(work, "state")

	// First life: reshard the prebuilt index into two shards and serve.
	p := startServer(t, bin, "-index", idx, "-snapshot-dir", snapDir,
		"-shards", "2", "-fix-batch", "16")
	for _, path := range []string{"MANIFEST", "shard-0", "shard-1"} {
		if _, err := os.Stat(filepath.Join(snapDir, path)); err != nil {
			t.Fatalf("sharded state layout missing %s: %v", path, err)
		}
	}
	for qi := 0; qi < 8; qi++ {
		var sr server.SearchResponse
		p.post(t, "/v1/search", server.SearchRequest{Vector: d.History.Row(qi), K: server.IntPtr(5), EF: server.IntPtr(30)}, &sr)
		if len(sr.Results) != 5 {
			t.Fatalf("scatter-gather search returned %d results", len(sr.Results))
		}
	}
	var fr server.FixResponse
	p.post(t, "/v1/fix", struct{}{}, &fr)
	if fr.Queries == 0 {
		t.Fatal("fix batch processed no queries")
	}
	var ins server.InsertResponse
	p.post(t, "/v1/insert", server.InsertRequest{Vector: d.TestOOD.Row(0)}, &ins)
	var del server.DeleteResponse
	p.post(t, "/v1/delete", server.DeleteRequest{ID: 7}, &del)
	if !del.Deleted {
		t.Fatal("delete failed")
	}
	before := p.stats(t)
	if before.Shards != 2 || len(before.PerShard) != 2 {
		t.Fatalf("stats: shards=%d perShard=%d, want 2/2", before.Shards, len(before.PerShard))
	}
	sumVec := 0
	for _, ps := range before.PerShard {
		sumVec += ps.Vectors
	}
	if sumVec != before.Vectors {
		t.Fatalf("per-shard vectors sum %d != aggregate %d", sumVec, before.Vectors)
	}
	p.terminate(t)

	// Second life: no -shards flag — the MANIFEST pins the count.
	p2 := startServer(t, bin, "-snapshot-dir", snapDir, "-fix-batch", "16")
	after := p2.stats(t)
	if after.Shards != 2 {
		t.Fatalf("restart did not honor the manifest: %d shards", after.Shards)
	}
	if after.Vectors != before.Vectors || after.Live != before.Live {
		t.Fatalf("vector counts differ across restart: %d/%d -> %d/%d",
			before.Vectors, before.Live, after.Vectors, after.Live)
	}
	if after.ExtraEdges != before.ExtraEdges {
		t.Fatalf("learned fix edges lost across restart: %d -> %d", before.ExtraEdges, after.ExtraEdges)
	}
	var sr server.SearchResponse
	p2.post(t, "/v1/search", server.SearchRequest{Vector: d.TestOOD.Row(0), K: server.IntPtr(1), EF: server.IntPtr(30)}, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != ins.ID {
		t.Fatalf("recovered sharded index lost the inserted vector: %+v", sr.Results)
	}
	p2.terminate(t)

	// A conflicting explicit flag is rejected instead of silently
	// rerouting every id.
	port := freePort(t)
	out, err := exec.Command(bin, "-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-snapshot-dir", snapDir, "-shards", "3").CombinedOutput()
	if err == nil {
		t.Fatalf("server started with -shards 3 against a 2-shard directory; output:\n%s", out)
	}
}

// TestOverloadFlags wires the admission flags end to end: the configured
// capacity and queue bound show up in /v1/stats, searches are admitted
// and counted, and -max-inflight=0 turns the governor off entirely.
func TestOverloadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the server binary")
	}
	work := t.TempDir()
	bin := buildServerBinary(t, work)

	d := dataset.Generate(dataset.Config{
		Name: "flags", N: 300, NHist: 20, NTest: 5,
		Dim: 8, Clusters: 4, Metric: vec.L2,
		GapMagnitude: 1.5, ClusterStd: 0.2, QueryStdScale: 1.5, Seed: 11,
	})
	g := hnsw.Build(d.Base, hnsw.Config{M: 8, EFConstruction: 60, Metric: vec.L2, Seed: 1}).Bottom()
	idx := filepath.Join(work, "base.ngig")
	if err := g.Save(idx); err != nil {
		t.Fatal(err)
	}

	p := startServer(t, bin, "-index", idx,
		"-max-inflight", "4", "-queue-depth", "3", "-search-timeout", "1s", "-ef-floor", "8")
	var sr server.SearchResponse
	p.post(t, "/v1/search", server.SearchRequest{Vector: d.TestOOD.Row(0), K: server.IntPtr(5), EF: server.IntPtr(30)}, &sr)
	if len(sr.Results) != 5 || sr.Truncated || sr.Clamped {
		t.Fatalf("idle search degraded: %+v", sr)
	}
	st := p.stats(t)
	if st.Admission == nil {
		t.Fatal("admission stats missing with -max-inflight set")
	}
	if st.Admission.Capacity != 4 || st.Admission.QueueDepth != 3 {
		t.Fatalf("flags not wired: capacity %d queueDepth %d", st.Admission.Capacity, st.Admission.QueueDepth)
	}
	if st.Admission.Admitted == 0 {
		t.Fatal("search not accounted by admission")
	}
	p.terminate(t)

	// Opting out: no governor, no admission section.
	p2 := startServer(t, bin, "-index", idx, "-max-inflight", "0")
	p2.post(t, "/v1/search", server.SearchRequest{Vector: d.TestOOD.Row(1), K: server.IntPtr(3), EF: server.IntPtr(30)}, &sr)
	if st := p2.stats(t); st.Admission != nil {
		t.Fatalf("admission stats present with -max-inflight=0: %+v", st.Admission)
	}
	p2.terminate(t)
}
