// Command ngfix-build constructs an HNSW-NGFix* index from vector files in
// the repository's binary format and saves it to disk.
//
// Usage:
//
//	ngfix-build -base base.ngfx -history hist.ngfx -metric cosine -out index.ngig
//
// The build pipeline is the paper's: HNSW base layer → approximate-NN
// preprocessing for the historical queries → two NGFix rounds (K=30 with
// RFix, then K=10).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ngfix/internal/core"
	"ngfix/internal/dataset"
	"ngfix/internal/hnsw"
	"ngfix/internal/vec"
)

func parseMetric(s string) (vec.Metric, error) {
	switch strings.ToLower(s) {
	case "l2", "euclidean":
		return vec.L2, nil
	case "ip", "innerproduct", "dot":
		return vec.InnerProduct, nil
	case "cos", "cosine":
		return vec.Cosine, nil
	}
	return 0, fmt.Errorf("unknown metric %q (want l2 | ip | cosine)", s)
}

func main() {
	basePath := flag.String("base", "", "base vectors file (required)")
	histPath := flag.String("history", "", "historical query vectors file (optional; skips fixing if absent)")
	metricName := flag.String("metric", "l2", "distance metric: l2 | ip | cosine")
	out := flag.String("out", "index.ngig", "output index path")
	m := flag.Int("m", 16, "HNSW M (out-degree target)")
	efc := flag.Int("efc", 200, "HNSW efConstruction")
	lex := flag.Int("lex", 48, "extra out-degree budget for NGFix/RFix")
	k1 := flag.Int("k1", 30, "first-round fixing neighborhood")
	k2 := flag.Int("k2", 10, "second-round fixing neighborhood (0 disables)")
	prepEF := flag.Int("prep-ef", 200, "search list for approximate-NN preprocessing")
	exact := flag.Bool("exact", false, "use exact (brute force) NN preprocessing")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "ngfix-build:", err)
		os.Exit(1)
	}
	if *basePath == "" {
		fail(fmt.Errorf("-base is required"))
	}
	metric, err := parseMetric(*metricName)
	if err != nil {
		fail(err)
	}
	base, err := dataset.LoadMatrix(*basePath)
	if err != nil {
		fail(err)
	}
	fmt.Printf("loaded %d base vectors (dim %d)\n", base.Rows(), base.Dim())

	start := time.Now()
	h := hnsw.Build(base, hnsw.Config{M: *m, EFConstruction: *efc, Metric: metric, Seed: 7})
	g := h.Bottom()
	fmt.Printf("HNSW base layer built in %s (avg degree %.1f)\n", time.Since(start).Round(time.Millisecond), g.AvgDegree())

	rounds := []core.Round{{K: *k1, RFix: true}}
	if *k2 > 0 {
		rounds = append(rounds, core.Round{K: *k2})
	}
	ix := core.New(g, core.Options{Rounds: rounds, LEx: *lex})

	if *histPath != "" {
		hist, err := dataset.LoadMatrix(*histPath)
		if err != nil {
			fail(err)
		}
		fmt.Printf("fixing with %d historical queries...\n", hist.Rows())
		start = time.Now()
		var truth = ix.ApproxTruth(hist, 2*(*k1), *prepEF)
		if *exact {
			truth = core.ExactTruth(base, hist, metric, 2*(*k1))
		}
		rep := ix.Fix(hist, truth)
		fmt.Printf("fixed in %s: +%d NGFix edges, +%d RFix edges (%d queries needed RFix)\n",
			time.Since(start).Round(time.Millisecond), rep.NGFixEdges, rep.RFixEdges, rep.RFixTriggered)
	}

	if err := ix.G.Save(*out); err != nil {
		fail(err)
	}
	fmt.Printf("saved index to %s (%.1f MB, avg degree %.1f)\n",
		*out, float64(ix.G.SizeBytes())/(1<<20), ix.G.AvgDegree())
}
