// Command ngfix-bench regenerates the paper's tables and figures on the
// synthetic workloads.
//
// Usage:
//
//	ngfix-bench [-scale S] [-out FILE] all
//	ngfix-bench [-scale S] [-out FILE] fig8 fig12 table1 ...
//	ngfix-bench -list
//
// Scale multiplies the default dataset sizes (1.0 ≈ 8k base points); the
// shapes the paper reports hold across scales, larger runs just sharpen
// the QPS separation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ngfix/internal/bench"
	"ngfix/internal/dataset"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default sizes)")
	out := flag.String("out", "", "write results to this file instead of stdout")
	list := flag.Bool("list", false, "list available experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ngfix-bench [-scale S] [-out FILE] all | <experiment>...")
		fmt.Fprintln(os.Stderr, "run 'ngfix-bench -list' to see experiments")
		os.Exit(2)
	}

	var exps []bench.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range ids {
			e, err := bench.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	s := dataset.Scale(*scale)
	fmt.Fprintf(w, "ngfix-bench: scale=%.2f, started %s\n\n", *scale, time.Now().Format(time.RFC3339))
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Description)
		tables := e.Run(s)
		if err := bench.WriteAll(w, tables); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  done in %s\n", time.Since(start).Round(time.Millisecond))
	}
}
