// Command ngfix-bench regenerates the paper's tables and figures on the
// synthetic workloads.
//
// Usage:
//
//	ngfix-bench [-scale S] [-out FILE] all
//	ngfix-bench [-scale S] [-out FILE] fig8 fig12 table1 ...
//	ngfix-bench -list
//	ngfix-bench -perf kernels|search|policy|pq [-json FILE] [-short]
//
// The -perf modes run the performance harness instead of a paper exhibit:
// "kernels" micro-benchmarks the distance kernels on every dispatch arm,
// "search" sweeps beam search end to end, "policy" measures the serving
// policies (adaptive ef + answer cache) against a recall-matched fixed-ef
// baseline on a repeat-heavy workload, "pq" compares memory-tiered
// (PQ-ADC + exact rerank) serving against full precision at matched efs.
// All emit JSON (to -json FILE, or stdout) with fixed-seed inputs;
// `make bench` drives them to produce BENCH_kernels.json,
// BENCH_search.json, BENCH_policy.json, and BENCH_pq.json.
//
// Scale multiplies the default dataset sizes (1.0 ≈ 8k base points); the
// shapes the paper reports hold across scales, larger runs just sharpen
// the QPS separation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ngfix/internal/bench"
	"ngfix/internal/dataset"
	"ngfix/internal/vec"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = default sizes)")
	out := flag.String("out", "", "write results to this file instead of stdout")
	list := flag.Bool("list", false, "list available experiments and exit")
	perf := flag.String("perf", "", "run the perf harness instead: kernels | search")
	jsonOut := flag.String("json", "", "with -perf: write the JSON report to this file")
	short := flag.Bool("short", false, "with -perf: smaller sizes / shorter timing windows (CI)")
	flag.Parse()

	if *perf != "" {
		runPerf(*perf, *jsonOut, *short)
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ngfix-bench [-scale S] [-out FILE] all | <experiment>...")
		fmt.Fprintln(os.Stderr, "run 'ngfix-bench -list' to see experiments")
		os.Exit(2)
	}

	var exps []bench.Experiment
	if len(ids) == 1 && ids[0] == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range ids {
			e, err := bench.Lookup(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	s := dataset.Scale(*scale)
	fmt.Fprintf(w, "ngfix-bench: scale=%.2f, started %s\n\n", *scale, time.Now().Format(time.RFC3339))
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Description)
		tables := e.Run(s)
		if err := bench.WriteAll(w, tables); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  done in %s\n", time.Since(start).Round(time.Millisecond))
	}
}

// runPerf dispatches the -perf harness modes and writes the JSON report.
func runPerf(mode, jsonPath string, short bool) {
	var report interface{}
	start := time.Now()
	switch mode {
	case "kernels":
		fmt.Fprintf(os.Stderr, "perf: kernel micro-bench (short=%v, best kernel=%s)...\n",
			short, vec.BestKernelName())
		rep := bench.RunKernelBench(short)
		for _, s := range rep.Speedups {
			fmt.Fprintf(os.Stderr, "  %-8s dim=%-4d %.2fx\n", s.Op, s.Dim, s.Speedup)
		}
		report = rep
	case "search":
		fmt.Fprintf(os.Stderr, "perf: search macro-bench (short=%v, best kernel=%s)...\n",
			short, vec.BestKernelName())
		rep := bench.RunSearchBench(short)
		if rep.QPSSpeedup > 0 {
			fmt.Fprintf(os.Stderr, "  mean QPS speedup: %.2fx\n", rep.QPSSpeedup)
		}
		report = rep
	case "policy":
		fmt.Fprintf(os.Stderr, "perf: serving-policy macro-bench (short=%v)...\n", short)
		rep := bench.RunPolicyBench(short)
		fmt.Fprintf(os.Stderr, "  effective QPS speedup (cache+adaptive vs fixed ef): %.2fx\n",
			rep.EffectiveQPSSpeedup)
		fmt.Fprintf(os.Stderr, "  adaptive NDC ratio at matched recall: %.2f\n", rep.AdaptiveNDCRatio)
		report = rep
	case "pq":
		fmt.Fprintf(os.Stderr, "perf: memory-tiered serving macro-bench (short=%v)...\n", short)
		rep, err := bench.RunPQBench(short)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "  resident vector-memory reduction: %.1fx\n", rep.ResidentReductionX)
		fmt.Fprintf(os.Stderr, "  worst recall@10 loss at matched ef: %.2f pts\n", rep.MaxRecallLossPts)
		report = rep
	default:
		fmt.Fprintf(os.Stderr, "unknown -perf mode %q (have: kernels, search, policy, pq)\n", mode)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "  done in %s\n", time.Since(start).Round(time.Millisecond))

	var w io.Writer = os.Stdout
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := bench.WriteJSON(w, report); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
